package dag_test

import (
	"errors"
	"testing"

	"thunderbolt/internal/dag"
	"thunderbolt/internal/dag/dagtest"
	"thunderbolt/internal/types"
)

func TestAddAndLookup(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	r1 := b.NextRound(nil, nil)

	v, ok := b.Store.Get(1, 2)
	if !ok || v != r1[2] {
		t.Fatal("Get(1,2) failed")
	}
	if _, ok := b.Store.ByBlock(r1[0].Block.Digest()); !ok {
		t.Fatal("ByBlock lookup failed")
	}
	if _, ok := b.Store.ByCert(r1[0].Cert.Digest()); !ok {
		t.Fatal("ByCert lookup failed")
	}
	if b.Store.CountAtRound(1) != 4 || b.Store.CountAtRound(2) != 0 {
		t.Fatal("round counts wrong")
	}
	// Idempotent re-add.
	if err := b.Store.Add(r1[0]); err != nil {
		t.Fatalf("idempotent add failed: %v", err)
	}
}

func TestAddRejectsEquivocation(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	b.NextRound(nil, nil)
	// A second, different block for slot (1, 0).
	dup := c.Vertex(&types.Block{Epoch: 0, Round: 1, Proposer: 0, Kind: types.NormalBlock, ProposedUnixNano: 999})
	if err := b.Store.Add(dup); err == nil {
		t.Fatal("equivocating block accepted")
	}
}

func TestAddRejectsWrongEpochAndBadCert(t *testing.T) {
	c := dagtest.NewCommittee(4)
	st := dag.NewStore(1, 4)
	blk := &types.Block{Epoch: 0, Round: 1, Proposer: 0, Kind: types.NormalBlock}
	if err := st.Add(c.Vertex(blk)); err == nil {
		t.Fatal("wrong-epoch vertex accepted")
	}
	// Certificate covering a different block.
	blk2 := &types.Block{Epoch: 1, Round: 1, Proposer: 0, Kind: types.NormalBlock}
	other := &types.Block{Epoch: 1, Round: 1, Proposer: 0, Kind: types.SkipBlock}
	v := &dag.Vertex{Block: blk2, Cert: c.Certify(other)}
	if err := st.Add(v); err == nil {
		t.Fatal("mismatched certificate accepted")
	}
}

func TestAddRequiresParents(t *testing.T) {
	c := dagtest.NewCommittee(4)
	st := dag.NewStore(0, 4)
	orphan := c.Vertex(&types.Block{
		Epoch: 0, Round: 2, Proposer: 0, Kind: types.NormalBlock,
		Parents: []types.Digest{types.HashBytes([]byte("nowhere"))},
	})
	err := st.Add(orphan)
	var mpe *dag.MissingParentError
	if !errors.As(err, &mpe) {
		t.Fatalf("want MissingParentError, got %v", err)
	}
}

func TestStoreBaseEntry(t *testing.T) {
	c := dagtest.NewCommittee(4)
	st := dag.NewStoreAt(0, 4, 101)
	if st.Base() != 101 || st.Floor() != 101 {
		t.Fatalf("base=%d floor=%d, want 101/101", st.Base(), st.Floor())
	}
	// Below the base is rejected outright: that history lives only
	// inside the installed snapshot.
	low := c.Vertex(&types.Block{Epoch: 0, Round: 100, Proposer: 0, Kind: types.NormalBlock})
	if err := st.Add(low); err == nil {
		t.Fatal("vertex below the base admitted")
	}
	// At the base, parents are waived even though the block names
	// certificates the installer never held.
	entry := c.Vertex(&types.Block{
		Epoch: 0, Round: 101, Proposer: 0, Kind: types.NormalBlock,
		Parents: []types.Digest{types.HashBytes([]byte("pruned-cert"))},
	})
	if err := st.Add(entry); err != nil {
		t.Fatalf("base-round vertex rejected: %v", err)
	}
	// Above the base the parent requirement is back in force.
	orphan := c.Vertex(&types.Block{
		Epoch: 0, Round: 102, Proposer: 1, Kind: types.NormalBlock,
		Parents: []types.Digest{types.HashBytes([]byte("nowhere"))},
	})
	var mpe *dag.MissingParentError
	if err := st.Add(orphan); !errors.As(err, &mpe) {
		t.Fatalf("want MissingParentError above base, got %v", err)
	}
	child := c.Vertex(&types.Block{
		Epoch: 0, Round: 102, Proposer: 1, Kind: types.NormalBlock,
		Parents: []types.Digest{entry.Cert.Digest()},
	})
	if err := st.Add(child); err != nil {
		t.Fatalf("well-parented vertex above base rejected: %v", err)
	}
}

func TestSupportFor(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	r1 := b.NextRound(nil, nil)
	// Round 2 from only 3 proposers; all reference all of round 1.
	b.NextRound([]types.ReplicaID{0, 1, 2}, nil)
	if got := b.Store.SupportFor(r1[3]); got != 3 {
		t.Fatalf("support=%d want 3", got)
	}
}

func TestCausalHistoryComplete(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	b.NextRound(nil, nil)
	b.NextRound(nil, nil)
	r3 := b.NextRound(nil, nil)
	hist := b.Store.CausalHistory(r3[0])
	// Full connectivity: history of a round-3 vertex is all 8 earlier vertices.
	if len(hist) != 8 {
		t.Fatalf("history size %d want 8", len(hist))
	}
}

func TestLinearizeDeterministicOrder(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	b.NextRound(nil, nil)
	b.NextRound(nil, nil)
	r3 := b.NextRound(nil, nil)

	got := b.Store.Linearize(r3[2], nil)
	if len(got) != 9 {
		t.Fatalf("linearized %d vertices, want 9", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, bb := got[i-1], got[i]
		if a.Round() > bb.Round() || (a.Round() == bb.Round() && a.Proposer() >= bb.Proposer()) {
			t.Fatalf("order violated at %d: (%d,%d) then (%d,%d)",
				i, a.Round(), a.Proposer(), bb.Round(), bb.Proposer())
		}
	}
	// Skip filter removes vertices.
	skipped := b.Store.Linearize(r3[2], func(d types.Digest) bool {
		return d == got[0].Cert.Digest()
	})
	if len(skipped) != 8 {
		t.Fatalf("skip filter ignored: %d", len(skipped))
	}
}

func TestCertsAtRoundSorted(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	r1 := b.NextRound(nil, nil)
	certs := b.Store.CertsAtRound(1)
	if len(certs) != 4 {
		t.Fatalf("%d certs", len(certs))
	}
	for i, p := range []types.ReplicaID{0, 1, 2, 3} {
		if certs[i] != r1[p].Cert.Digest() {
			t.Fatalf("cert %d not in proposer order", i)
		}
	}
}

func TestHighestRound(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	if b.Store.HighestRound() != 0 {
		t.Fatal("empty store should report round 0")
	}
	b.NextRound(nil, nil)
	b.NextRound(nil, nil)
	if b.Store.HighestRound() != 2 {
		t.Fatalf("highest=%d want 2", b.Store.HighestRound())
	}
}

func TestPruneBelowRemovesRoundsAndRejectsLateArrivals(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	var keep *dag.Vertex
	for r := 0; r < 10; r++ {
		vs := b.NextRound(nil, nil)
		if r == 2 {
			keep = vs[1] // round 3, pruned below floor 6
		}
	}
	if got := b.Store.HighestRound(); got != 10 {
		t.Fatalf("highest round %d, want 10", got)
	}
	removed := b.Store.PruneBelow(6)
	if len(removed) != 5*4 {
		t.Fatalf("pruned %d vertices, want 20", len(removed))
	}
	if b.Store.Floor() != 6 {
		t.Fatalf("floor %d, want 6", b.Store.Floor())
	}
	if b.Store.Len() != 5*4 {
		t.Fatalf("retained %d vertices, want 20", b.Store.Len())
	}
	if _, ok := b.Store.ByCert(keep.Cert.Digest()); ok {
		t.Fatal("pruned vertex still reachable by certificate")
	}
	if _, ok := b.Store.ByBlock(keep.Block.Digest()); ok {
		t.Fatal("pruned vertex still reachable by block digest")
	}
	if b.Store.CountAtRound(3) != 0 {
		t.Fatal("pruned round still counts vertices")
	}
	// Highest round is unaffected by pruning.
	if got := b.Store.HighestRound(); got != 10 {
		t.Fatalf("highest round %d after prune, want 10", got)
	}
	// Re-adding a pruned vertex must be rejected, and the floor is
	// monotone: a lower prune call is a no-op.
	if err := b.Store.Add(keep); err == nil {
		t.Fatal("vertex below the floor re-admitted")
	}
	if removed := b.Store.PruneBelow(4); removed != nil {
		t.Fatalf("floor moved backwards: pruned %d", len(removed))
	}
	// Vertices at the floor and above still resolve.
	if _, ok := b.Store.Get(6, 0); !ok {
		t.Fatal("vertex at the floor lost")
	}
}

func TestPruneBelowClampsToFrontier(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	for r := 0; r < 3; r++ {
		b.NextRound(nil, nil)
	}
	// A floor past the frontier prunes everything present but must
	// not advance beyond highest+1 (which would reject the next
	// round's legitimate vertices).
	removed := b.Store.PruneBelow(100)
	if len(removed) != 3*4 {
		t.Fatalf("pruned %d, want 12", len(removed))
	}
	if b.Store.Floor() != 4 {
		t.Fatalf("floor %d, want clamp at 4", b.Store.Floor())
	}
}
