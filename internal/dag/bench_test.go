package dag_test

import (
	"testing"

	"thunderbolt/internal/dag/dagtest"
	"thunderbolt/internal/types"
)

// TestSupportForMemoInvalidation pins the memo's correctness contract:
// a cached count must be recomputed when the supporting round gains a
// vertex, and must keep answering correctly once the round is full.
func TestSupportForMemoInvalidation(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	r1 := b.NextRound(nil, nil)
	leader := r1[0]

	// Grow round 2 one vertex at a time; SupportFor must track every
	// insertion even though it caches between calls.
	var certs []types.Digest
	for _, v := range r1 {
		certs = append(certs, v.Cert.Digest())
	}
	types.SortDigests(certs)
	for i := 0; i < c.N; i++ {
		if got := b.Store.SupportFor(leader); got != i {
			t.Fatalf("support before vertex %d: got %d, want %d", i, got, i)
		}
		if got := b.Store.SupportFor(leader); got != i {
			t.Fatalf("memoized support before vertex %d: got %d, want %d", i, got, i)
		}
		blk := &types.Block{
			Epoch: 0, Round: 2, Proposer: types.ReplicaID(i),
			Shard: types.ShardID(i), Kind: types.NormalBlock,
			Parents:          certs,
			ProposedUnixNano: int64(2000 + i),
		}
		if err := b.Store.Add(c.Vertex(blk)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Store.SupportFor(leader); got != c.N {
		t.Fatalf("support after full round: got %d, want %d", got, c.N)
	}
}

// BenchmarkSupportFor measures the committer's support probe against a
// settled full round — the case Advance hits repeatedly while waiting
// for the f+1 threshold (and, before memoization, recounted every
// time: ~n parent-list scans of 2f+1 digests each).
func BenchmarkSupportFor(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(benchName(n), func(b *testing.B) {
			c := dagtest.NewCommittee(n)
			bl := dagtest.NewBuilder(c, 0)
			r1 := bl.NextRound(nil, nil)
			bl.NextRound(nil, nil)
			leader := r1[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := bl.Store.SupportFor(leader); got != n {
					b.Fatalf("support %d, want %d", got, n)
				}
			}
		})
	}
}

// BenchmarkSupportForRecount is the pre-memoization cost baseline: the
// same parent-list scan SupportFor runs on a memo miss, written out
// against the store's public surface. The gap between this and
// BenchmarkSupportFor is the per-probe win the memo buys the committer
// on every Advance over a settled round.
func BenchmarkSupportForRecount(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(benchName(n), func(b *testing.B) {
			c := dagtest.NewCommittee(n)
			bl := dagtest.NewBuilder(c, 0)
			r1 := bl.NextRound(nil, nil)
			bl.NextRound(nil, nil)
			leader := r1[0]
			target := leader.Cert.Digest()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				support := 0
				for _, w := range bl.Store.AtRound(leader.Round() + 1) {
					for _, p := range w.Block.Parents {
						if p == target {
							support++
							break
						}
					}
				}
				if support != n {
					b.Fatalf("support %d, want %d", support, n)
				}
			}
		})
	}
}

func benchName(n int) string {
	if n == 4 {
		return "n=4"
	}
	return "n=16"
}
