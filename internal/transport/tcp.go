package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"thunderbolt/internal/types"
)

// TCPConfig describes one replica's view of a TCP committee.
type TCPConfig struct {
	// Self is this replica's ID.
	Self types.ReplicaID
	// Listen is the local address to accept peer connections on.
	Listen string
	// Peers maps every replica ID (including self) to its address.
	Peers map[types.ReplicaID]string
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration
	// RetryInterval spaces reconnection attempts (default 200ms).
	RetryInterval time.Duration
}

// TCPTransport implements Transport over real sockets with
// length-prefixed frames:
//
//	[4B big-endian frame length][1B msg type][4B sender id][payload]
//
// Outbound connections are dialed lazily and re-dialed on failure;
// inbound frames are dispatched to the handler from per-connection
// reader goroutines. Message authenticity is the protocol layer's
// responsibility (signatures), as with SimNetwork.
type TCPTransport struct {
	cfg TCPConfig
	ln  net.Listener

	mu      sync.Mutex
	h       Handler
	conns   map[types.ReplicaID]net.Conn
	inbound map[net.Conn]struct{}
	// clientConns maps non-peer sender IDs (gateway clients) to their
	// latest inbound connection, so a replica can answer a client it
	// has no address book entry for: the reply rides the connection
	// the client dialed. Entries follow the connection's lifetime.
	clientConns map[types.ReplicaID]net.Conn
	// failedAt backs off dialing per peer: while a peer is down, every
	// Send to it would otherwise pay a full dial timeout — on the
	// node's event loop, where one dead peer must not stall protocol
	// progress for the live committee (crash/restart scenarios).
	failedAt map[types.ReplicaID]time.Time
	done     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// clientWriteTimeout bounds one reply write to a gateway client. Far
// above any healthy round-trip, far below "wedged forever".
const clientWriteTimeout = 2 * time.Second

// NewTCPTransport starts listening immediately.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 200 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCPTransport{
		cfg:         cfg,
		ln:          ln,
		conns:       make(map[types.ReplicaID]net.Conn),
		inbound:     make(map[net.Conn]struct{}),
		clientConns: make(map[types.ReplicaID]net.Conn),
		failedAt:    make(map[types.ReplicaID]time.Time),
		done:        make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetPeers installs (or replaces) the peer address book. Useful when
// a committee binds ephemeral ports first and exchanges addresses
// afterwards; call before any Send/Broadcast traffic.
func (t *TCPTransport) SetPeers(peers map[types.ReplicaID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Peers = peers
}

// Self implements Transport.
func (t *TCPTransport) Self() types.ReplicaID { return t.cfg.Self }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	t.h = h
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.mu.Lock()
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		for id, c := range t.clientConns {
			if c == conn {
				delete(t.clientConns, id)
			}
		}
		t.mu.Unlock()
		conn.Close()
	}()
	var hdr [4]byte
	for {
		select {
		case <-t.done:
			return
		default:
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 5 || n > 64<<20 {
			return // malformed frame; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		mt := MsgType(frame[0])
		from := types.ReplicaID(binary.BigEndian.Uint32(frame[1:5]))
		t.mu.Lock()
		h := t.h
		// A sender outside the peer book is a gateway client: remember
		// its connection so Send can answer it. Claimed IDs are not
		// authenticated (same trust model as replica frames — protocol
		// payloads authenticate themselves); a client ID collision
		// just misdelivers acks, never consensus traffic.
		if _, peer := t.cfg.Peers[from]; !peer {
			t.clientConns[from] = conn
		}
		t.mu.Unlock()
		if h != nil {
			h(from, mt, frame[5:])
		}
	}
}

// conn returns (dialing if necessary) the outbound connection to a
// peer. Dial failures are remembered: until RetryInterval elapses,
// further attempts fail fast instead of paying the dial timeout again
// — sends to a down peer cost microseconds, not seconds, and the
// protocol's own retry cadence (housekeeping) spaces the real redials.
func (t *TCPTransport) conn(to types.ReplicaID) (net.Conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	if at, ok := t.failedAt[to]; ok && time.Since(at) < t.cfg.RetryInterval {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: peer %d unreachable (backing off)", to)
	}
	addr, ok := t.cfg.Peers[to]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: unknown peer %d", to)
	}
	// Record the attempt before dialing, not only after it fails: a
	// blackholed peer (packet drop, no RST) blocks the dial for the
	// full timeout, and every Send racing or following it within the
	// window must fail fast instead of queuing up behind dials of
	// their own. Success clears the mark; failure refreshes it so the
	// backoff is measured from the dial's completion.
	t.failedAt[to] = time.Now()
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.failedAt[to] = time.Now()
		return nil, err
	}
	delete(t.failedAt, to)
	if existing, ok := t.conns[to]; ok {
		// Lost the dial race; keep the established one.
		_ = c.Close()
		return existing, nil
	}
	t.conns[to] = c
	// Read the dialed connection too: between replicas nothing ever
	// comes back on it (peers answer by dialing the address book), but
	// a gateway client is not dialable — its acks, nacks, and commit
	// notifications ride the very connection it dialed out on.
	t.wg.Add(1)
	go t.readLoop(c)
	return c, nil
}

func (t *TCPTransport) dropConn(to types.ReplicaID, c net.Conn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = c.Close()
}

// Send implements Transport. A failed write drops the cached
// connection; one immediate retry covers the common stale-socket case.
func (t *TCPTransport) Send(to types.ReplicaID, mt MsgType, payload []byte) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if to == t.cfg.Self {
		t.mu.Lock()
		h := t.h
		t.mu.Unlock()
		if h != nil {
			h(t.cfg.Self, mt, append([]byte(nil), payload...))
		}
		return nil
	}
	frame := make([]byte, 4+1+4+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+4+len(payload)))
	frame[4] = byte(mt)
	binary.BigEndian.PutUint32(frame[5:9], uint32(t.cfg.Self))
	copy(frame[9:], payload)

	// A destination outside the peer book is a gateway client reached
	// over the connection it dialed in on; there is nothing to redial,
	// so a write failure just drops the mapping (the client's own
	// retransmission re-establishes it).
	t.mu.Lock()
	_, isPeer := t.cfg.Peers[to]
	cc := t.clientConns[to]
	t.mu.Unlock()
	if !isPeer {
		if cc == nil {
			return fmt.Errorf("transport: no connection from client %d", to)
		}
		// Client replies are written from the replica's event loop, and
		// clients are untrusted: one that stops reading must cost a
		// bounded wait, never a wedged consensus loop. A deadline hit
		// drops the connection; the client's own retransmission dials
		// back in.
		_ = cc.SetWriteDeadline(time.Now().Add(clientWriteTimeout))
		_, err := cc.Write(frame)
		_ = cc.SetWriteDeadline(time.Time{})
		if err != nil {
			t.mu.Lock()
			if t.clientConns[to] == cc {
				delete(t.clientConns, to)
			}
			t.mu.Unlock()
			_ = cc.Close()
			return err
		}
		return nil
	}

	// A dial failure returns immediately (the peer is down; the
	// protocol layer's own retries will come back). A write failure
	// drops the cached connection and redials once, covering the
	// common stale-socket case after a peer restart.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		c, err := t.conn(to)
		if err != nil {
			return err
		}
		if _, err := c.Write(frame); err != nil {
			t.dropConn(to, c)
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// Broadcast implements Transport. Unreachable peers are skipped (the
// protocol tolerates f faults); the first error is reported after all
// sends are attempted.
func (t *TCPTransport) Broadcast(mt MsgType, payload []byte) error {
	t.mu.Lock()
	ids := make([]types.ReplicaID, 0, len(t.cfg.Peers))
	for id := range t.cfg.Peers {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := t.Send(id, mt, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		_ = t.ln.Close()
		t.mu.Lock()
		for id, c := range t.conns {
			_ = c.Close()
			delete(t.conns, id)
		}
		// Close inbound connections too, or their readLoops would
		// block in ReadFull until the remote side also closes —
		// deadlocking committees that tear down sequentially.
		for c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}
