// Package transport provides replica-to-replica messaging.
//
// Two implementations share one interface: SimNetwork delivers
// messages in-process through per-link FIFO queues with a configurable
// latency/jitter/loss model (the reproduction's stand-in for the
// paper's AWS LAN/WAN testbeds), and TCPTransport speaks
// length-prefixed frames over real sockets for multi-process local
// testbeds.
//
// Channels are point-to-point and ordered per link. Authenticity of
// protocol payloads comes from the signature scheme in
// internal/crypto, not from the transport.
package transport

import (
	"errors"

	"thunderbolt/internal/types"
)

// MsgType tags the protocol meaning of a payload. The node layer
// defines the concrete values; transport treats them opaquely.
type MsgType uint8

// Handler receives inbound messages. Handlers run on the transport's
// delivery goroutine and must not block for long.
type Handler func(from types.ReplicaID, mt MsgType, payload []byte)

// Transport sends opaque payloads between committee members.
type Transport interface {
	// Self returns this endpoint's replica ID.
	Self() types.ReplicaID
	// Send delivers to one peer. Sending to self is legal and loops
	// back through the handler.
	Send(to types.ReplicaID, mt MsgType, payload []byte) error
	// Broadcast delivers to every peer including self.
	Broadcast(mt MsgType, payload []byte) error
	// SetHandler installs the inbound message callback. Must be
	// called before any traffic arrives.
	SetHandler(h Handler)
	// Close tears the endpoint down; further sends fail.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")
