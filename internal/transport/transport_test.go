package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/types"
)

type recorder struct {
	mu   sync.Mutex
	msgs []string
	ch   chan string
}

func newRecorder() *recorder { return &recorder{ch: make(chan string, 1024)} }

func (r *recorder) handler() Handler {
	return func(from types.ReplicaID, mt MsgType, payload []byte) {
		s := fmt.Sprintf("%d/%d/%s", from, mt, payload)
		r.mu.Lock()
		r.msgs = append(r.msgs, s)
		r.mu.Unlock()
		r.ch <- s
	}
}

func (r *recorder) wait(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case got := <-r.ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q", want)
		}
	}
}

func TestSimSendAndBroadcast(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 3})
	defer net.Close()
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = newRecorder()
		net.Endpoint(types.ReplicaID(i)).SetHandler(recs[i].handler())
	}
	if err := net.Endpoint(0).Send(1, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	recs[1].wait(t, "0/7/hi")

	if err := net.Endpoint(2).Broadcast(9, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].wait(t, "2/9/all")
	}
}

func TestSimFIFOPerLink(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(0, 2*time.Millisecond)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	const count = 50
	for i := 0; i < count; i++ {
		if err := net.Endpoint(0).Send(1, 1, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rec.wait(t, fmt.Sprintf("0/1/m%03d", count-1))
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, s := range rec.msgs {
		if s != fmt.Sprintf("0/1/m%03d", i) {
			t.Fatalf("order violated at %d: %s", i, s)
		}
	}
}

func TestSimLatencyApplied(t *testing.T) {
	const delay = 30 * time.Millisecond
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(delay, delay)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	start := time.Now()
	net.Endpoint(0).Send(1, 1, []byte("x"))
	rec.wait(t, "0/1/x")
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivered in %v, want >= %v", elapsed, delay)
	}
}

func TestSimCrashAndSever(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 3})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })

	net.Crash(1)
	net.Endpoint(0).Send(1, 1, []byte("dropped"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("crashed replica received a message")
	}
	net.Restart(1)
	net.Sever(0, 1)
	net.Endpoint(0).Send(1, 1, []byte("dropped"))
	// Reverse direction unaffected: 2 -> 1 works.
	net.Endpoint(2).Send(1, 1, []byte("ok"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("got %d messages, want exactly 1", got.Load())
	}
	net.Heal(0, 1)
	net.Endpoint(0).Send(1, 1, []byte("ok2"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 2 {
		t.Fatal("healed link did not deliver")
	}
}

func TestSimDropRate(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, DropRate: 1.0})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })
	for i := 0; i < 20; i++ {
		net.Endpoint(0).Send(1, 1, []byte("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("DropRate=1 delivered messages")
	}
}

func TestSimPartitionAndHealAll(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 4})
	defer net.Close()
	var got [4]atomic.Int32
	for i := 0; i < 4; i++ {
		i := i
		net.Endpoint(types.ReplicaID(i)).SetHandler(func(types.ReplicaID, MsgType, []byte) { got[i].Add(1) })
	}
	net.Partition([]types.ReplicaID{0, 1}, []types.ReplicaID{2, 3})
	net.Endpoint(0).Send(1, 1, []byte("same-side")) // delivered
	net.Endpoint(0).Send(2, 1, []byte("cross"))     // dropped
	net.Endpoint(3).Send(2, 1, []byte("same-side")) // delivered
	net.Endpoint(3).Send(1, 1, []byte("cross"))     // dropped
	time.Sleep(20 * time.Millisecond)
	if got[1].Load() != 1 || got[2].Load() != 1 {
		t.Fatalf("same-side traffic lost: %d %d", got[1].Load(), got[2].Load())
	}
	net.HealAll()
	net.Endpoint(0).Send(2, 1, []byte("post-heal"))
	time.Sleep(20 * time.Millisecond)
	if got[2].Load() != 2 {
		t.Fatal("HealAll did not restore cross-partition links")
	}
}

func TestSimIsolate(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 3})
	defer net.Close()
	var got [3]atomic.Int32
	for i := 0; i < 3; i++ {
		i := i
		net.Endpoint(types.ReplicaID(i)).SetHandler(func(types.ReplicaID, MsgType, []byte) { got[i].Add(1) })
	}
	net.Isolate(1)
	net.Endpoint(0).Send(1, 1, []byte("in"))   // dropped
	net.Endpoint(1).Send(0, 1, []byte("out"))  // dropped
	net.Endpoint(1).Send(1, 1, []byte("self")) // self-link survives
	net.Endpoint(0).Send(2, 1, []byte("side")) // unaffected
	time.Sleep(20 * time.Millisecond)
	if got[0].Load() != 0 || got[1].Load() != 1 || got[2].Load() != 1 {
		t.Fatalf("isolation wrong: got %d %d %d", got[0].Load(), got[1].Load(), got[2].Load())
	}
}

func TestSimRuntimeLossAndClearFaults(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })
	net.SetLossRate(1.0)
	for i := 0; i < 10; i++ {
		net.Endpoint(0).Send(1, 1, []byte("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("SetLossRate(1) delivered messages")
	}
	net.ClearFaults() // baseline DropRate is 0
	net.Endpoint(0).Send(1, 1, []byte("x"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatal("ClearFaults did not restore delivery")
	}
}

func TestSimAsymmetricLinkLoss(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2})
	defer net.Close()
	var fwd, rev atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { fwd.Add(1) })
	net.Endpoint(0).SetHandler(func(types.ReplicaID, MsgType, []byte) { rev.Add(1) })
	net.SetLinkLoss(0, 1, 1.0) // forward dead, reverse healthy
	for i := 0; i < 10; i++ {
		net.Endpoint(0).Send(1, 1, []byte("f"))
		net.Endpoint(1).Send(0, 1, []byte("r"))
	}
	time.Sleep(20 * time.Millisecond)
	if fwd.Load() != 0 || rev.Load() != 10 {
		t.Fatalf("asymmetric loss wrong: fwd=%d rev=%d", fwd.Load(), rev.Load())
	}
	net.SetLinkLoss(0, 1, -1) // remove override
	net.Endpoint(0).Send(1, 1, []byte("f"))
	time.Sleep(20 * time.Millisecond)
	if fwd.Load() != 1 {
		t.Fatal("link-loss override not removed")
	}
}

func TestSimDuplication(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, Seed: 42})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })
	net.SetDuplicationRate(1.0)
	const sent = 10
	for i := 0; i < sent; i++ {
		net.Endpoint(0).Send(1, 1, []byte("d"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 2*sent && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 2*sent {
		t.Fatalf("duplication rate 1: got %d deliveries, want %d", got.Load(), 2*sent)
	}
}

func TestSimLatencySpike(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	// Large enough that scheduler jitter (especially under -race on a
	// loaded runner) cannot blur the with/without-spike distinction.
	const spike = 300 * time.Millisecond
	net.SetExtraLatency(spike)
	start := time.Now()
	net.Endpoint(0).Send(1, 1, []byte("slow"))
	rec.wait(t, "0/1/slow")
	if elapsed := time.Since(start); elapsed < spike {
		t.Fatalf("delivered in %v despite %v spike", elapsed, spike)
	}
	net.ClearFaults()
	start = time.Now()
	net.Endpoint(0).Send(1, 1, []byte("fast"))
	rec.wait(t, "0/1/fast")
	if elapsed := time.Since(start); elapsed >= spike {
		t.Fatalf("spike persisted after ClearFaults: %v", elapsed)
	}
}

func TestSimClosedEndpointErrors(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2})
	ep := net.Endpoint(0)
	ep.Close()
	if err := ep.Send(1, 1, nil); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	net.Close()
}

func TestSimPayloadCopied(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(5*time.Millisecond, 5*time.Millisecond)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	buf := []byte("orig")
	net.Endpoint(0).Send(1, 1, buf)
	buf[0] = 'X' // mutate after send
	rec.wait(t, "0/1/orig")
}

func TestTCPRoundTrip(t *testing.T) {
	// Bring up a 3-replica TCP committee on loopback.
	cfgs := make([]TCPConfig, 3)
	trs := make([]*TCPTransport, 3)
	peers := map[types.ReplicaID]string{}
	for i := range trs {
		cfgs[i] = TCPConfig{Self: types.ReplicaID(i), Listen: "127.0.0.1:0"}
		tr, err := NewTCPTransport(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		peers[types.ReplicaID(i)] = tr.Addr()
	}
	for i := range trs {
		trs[i].cfg.Peers = peers
	}
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = newRecorder()
		trs[i].SetHandler(recs[i].handler())
	}

	if err := trs[0].Send(1, 5, []byte("tcp-hello")); err != nil {
		t.Fatal(err)
	}
	recs[1].wait(t, "0/5/tcp-hello")

	// Self-send loops back.
	if err := trs[2].Send(2, 6, []byte("me")); err != nil {
		t.Fatal(err)
	}
	recs[2].wait(t, "2/6/me")

	// Broadcast reaches everyone.
	if err := trs[1].Broadcast(7, []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].wait(t, "1/7/fan")
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.cfg.Peers = map[types.ReplicaID]string{1: b.Addr()}

	got := make(chan int, 1)
	b.SetHandler(func(from types.ReplicaID, mt MsgType, payload []byte) {
		got <- len(payload)
	})
	payload := make([]byte, 1<<20)
	if err := a.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1<<20 {
			t.Fatalf("payload truncated: %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large frame not delivered")
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[types.ReplicaID]string{}, RetryInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(9, 1, nil); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 1, nil); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
