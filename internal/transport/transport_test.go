package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/types"
)

type recorder struct {
	mu   sync.Mutex
	msgs []string
	ch   chan string
}

func newRecorder() *recorder { return &recorder{ch: make(chan string, 1024)} }

func (r *recorder) handler() Handler {
	return func(from types.ReplicaID, mt MsgType, payload []byte) {
		s := fmt.Sprintf("%d/%d/%s", from, mt, payload)
		r.mu.Lock()
		r.msgs = append(r.msgs, s)
		r.mu.Unlock()
		r.ch <- s
	}
}

func (r *recorder) wait(t *testing.T, want string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case got := <-r.ch:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q", want)
		}
	}
}

func TestSimSendAndBroadcast(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 3})
	defer net.Close()
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = newRecorder()
		net.Endpoint(types.ReplicaID(i)).SetHandler(recs[i].handler())
	}
	if err := net.Endpoint(0).Send(1, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	recs[1].wait(t, "0/7/hi")

	if err := net.Endpoint(2).Broadcast(9, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].wait(t, "2/9/all")
	}
}

func TestSimFIFOPerLink(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(0, 2*time.Millisecond)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	const count = 50
	for i := 0; i < count; i++ {
		if err := net.Endpoint(0).Send(1, 1, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rec.wait(t, fmt.Sprintf("0/1/m%03d", count-1))
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, s := range rec.msgs {
		if s != fmt.Sprintf("0/1/m%03d", i) {
			t.Fatalf("order violated at %d: %s", i, s)
		}
	}
}

func TestSimLatencyApplied(t *testing.T) {
	const delay = 30 * time.Millisecond
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(delay, delay)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	start := time.Now()
	net.Endpoint(0).Send(1, 1, []byte("x"))
	rec.wait(t, "0/1/x")
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivered in %v, want >= %v", elapsed, delay)
	}
}

func TestSimCrashAndSever(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 3})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })

	net.Crash(1)
	net.Endpoint(0).Send(1, 1, []byte("dropped"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("crashed replica received a message")
	}
	net.Restart(1)
	net.Sever(0, 1)
	net.Endpoint(0).Send(1, 1, []byte("dropped"))
	// Reverse direction unaffected: 2 -> 1 works.
	net.Endpoint(2).Send(1, 1, []byte("ok"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("got %d messages, want exactly 1", got.Load())
	}
	net.Heal(0, 1)
	net.Endpoint(0).Send(1, 1, []byte("ok2"))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 2 {
		t.Fatal("healed link did not deliver")
	}
}

func TestSimDropRate(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, DropRate: 1.0})
	defer net.Close()
	var got atomic.Int32
	net.Endpoint(1).SetHandler(func(types.ReplicaID, MsgType, []byte) { got.Add(1) })
	for i := 0; i < 20; i++ {
		net.Endpoint(0).Send(1, 1, []byte("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("DropRate=1 delivered messages")
	}
}

func TestSimClosedEndpointErrors(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2})
	ep := net.Endpoint(0)
	ep.Close()
	if err := ep.Send(1, 1, nil); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	net.Close()
}

func TestSimPayloadCopied(t *testing.T) {
	net := NewSimNetwork(SimConfig{N: 2, Latency: UniformLatency(5*time.Millisecond, 5*time.Millisecond)})
	defer net.Close()
	rec := newRecorder()
	net.Endpoint(1).SetHandler(rec.handler())
	buf := []byte("orig")
	net.Endpoint(0).Send(1, 1, buf)
	buf[0] = 'X' // mutate after send
	rec.wait(t, "0/1/orig")
}

func TestTCPRoundTrip(t *testing.T) {
	// Bring up a 3-replica TCP committee on loopback.
	cfgs := make([]TCPConfig, 3)
	trs := make([]*TCPTransport, 3)
	peers := map[types.ReplicaID]string{}
	for i := range trs {
		cfgs[i] = TCPConfig{Self: types.ReplicaID(i), Listen: "127.0.0.1:0"}
		tr, err := NewTCPTransport(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		peers[types.ReplicaID(i)] = tr.Addr()
	}
	for i := range trs {
		trs[i].cfg.Peers = peers
	}
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = newRecorder()
		trs[i].SetHandler(recs[i].handler())
	}

	if err := trs[0].Send(1, 5, []byte("tcp-hello")); err != nil {
		t.Fatal(err)
	}
	recs[1].wait(t, "0/5/tcp-hello")

	// Self-send loops back.
	if err := trs[2].Send(2, 6, []byte("me")); err != nil {
		t.Fatal(err)
	}
	recs[2].wait(t, "2/6/me")

	// Broadcast reaches everyone.
	if err := trs[1].Broadcast(7, []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].wait(t, "1/7/fan")
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.cfg.Peers = map[types.ReplicaID]string{1: b.Addr()}

	got := make(chan int, 1)
	b.SetHandler(func(from types.ReplicaID, mt MsgType, payload []byte) {
		got <- len(payload)
	})
	payload := make([]byte, 1<<20)
	if err := a.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1<<20 {
			t.Fatalf("payload truncated: %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large frame not delivered")
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[types.ReplicaID]string{}, RetryInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(9, 1, nil); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Self: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 1, nil); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
