package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"thunderbolt/internal/types"
)

// LatencyModel returns the one-way delay for a message from one
// replica to another. Jitter, asymmetry, and locality are all up to
// the model.
type LatencyModel func(from, to types.ReplicaID) time.Duration

// LANModel approximates a same-datacenter network: ~0.2ms ± jitter.
func LANModel() LatencyModel {
	return UniformLatency(150*time.Microsecond, 300*time.Microsecond)
}

// WANModel approximates a geo-distributed network: ~40ms ± jitter.
func WANModel() LatencyModel {
	return UniformLatency(30*time.Millisecond, 50*time.Millisecond)
}

// ZeroLatency delivers instantly (protocol-logic tests).
func ZeroLatency() LatencyModel {
	return func(types.ReplicaID, types.ReplicaID) time.Duration { return 0 }
}

// UniformLatency draws each delay uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyModel {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	return func(types.ReplicaID, types.ReplicaID) time.Duration {
		if hi <= lo {
			return lo
		}
		mu.Lock()
		d := lo + time.Duration(rng.Int63n(int64(hi-lo)))
		mu.Unlock()
		return d
	}
}

// SimConfig parameterizes an in-process network.
type SimConfig struct {
	// N is the number of endpoints.
	N int
	// Committee bounds Broadcast fan-out: endpoints [0, Committee) are
	// committee replicas, endpoints [Committee, N) are client
	// endpoints (gateway clients) that are addressable by Send but
	// excluded from protocol broadcasts. 0 means every endpoint is a
	// committee member.
	Committee int
	// Latency models one-way link delay; nil means ZeroLatency.
	Latency LatencyModel
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// Seed feeds the loss process.
	Seed int64
	// QueueLen bounds each link's in-flight queue (default 4096);
	// overflow blocks the sender, modelling backpressure.
	QueueLen int
}

// SimNetwork is a set of in-process endpoints joined by per-link FIFO
// queues with simulated delay. Beyond the static SimConfig knobs it
// supports runtime fault injection — link severing, replica crashes,
// adjustable loss and duplication rates, and latency spikes — all
// driven by the single seeded RNG so fault decisions replay
// deterministically for a given seed and message sequence.
type SimNetwork struct {
	cfg       SimConfig
	endpoints []*simEndpoint

	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]types.ReplicaID]bool // severed links
	crashed map[types.ReplicaID]bool

	// runtime-adjustable fault state (chaos harness knobs)
	lossRate    float64                              // global loss probability
	linkLoss    map[[2]types.ReplicaID]float64       // per-link override
	dupRate     float64                              // duplicate-delivery probability
	extraDelay  time.Duration                        // global added one-way delay
	linkDelay   map[[2]types.ReplicaID]time.Duration // per-link added delay
	interceptor Interceptor                          // Byzantine message mutation
}

// Interceptor inspects every surviving message before it is enqueued
// and may rewrite the payload or drop it (return ok=false). It is the
// chaos harness's Byzantine hook: a "lying" peer is modelled by
// mutating its outbound payloads on the wire. The returned slice is
// cloned by the network, and the function runs on the sender's
// goroutine — keep it fast and reentrant.
type Interceptor func(from, to types.ReplicaID, mt MsgType, payload []byte) (out []byte, ok bool)

type simMsg struct {
	from    types.ReplicaID
	mt      MsgType
	payload []byte
	release time.Time
}

type simEndpoint struct {
	net  *SimNetwork
	id   types.ReplicaID
	mu   sync.Mutex
	h    Handler
	outs []chan simMsg // one queue per destination, owned by sender
	done chan struct{}
	once sync.Once
}

// NewSimNetwork builds the network and starts its delivery goroutines.
func NewSimNetwork(cfg SimConfig) *SimNetwork {
	if cfg.Latency == nil {
		cfg.Latency = ZeroLatency()
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.Committee <= 0 || cfg.Committee > cfg.N {
		cfg.Committee = cfg.N
	}
	n := &SimNetwork{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		blocked:   make(map[[2]types.ReplicaID]bool),
		crashed:   make(map[types.ReplicaID]bool),
		lossRate:  cfg.DropRate,
		linkLoss:  make(map[[2]types.ReplicaID]float64),
		linkDelay: make(map[[2]types.ReplicaID]time.Duration),
	}
	n.endpoints = make([]*simEndpoint, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ep := &simEndpoint{
			net:  n,
			id:   types.ReplicaID(i),
			outs: make([]chan simMsg, cfg.N),
			done: make(chan struct{}),
		}
		n.endpoints[i] = ep
	}
	// Start one delivery pump per (sender, receiver) link: FIFO order
	// with per-message release times.
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			ch := make(chan simMsg, cfg.QueueLen)
			n.endpoints[i].outs[j] = ch
			go n.pump(ch, n.endpoints[j])
		}
	}
	return n
}

// pump delivers one link's messages in order, honoring release times.
func (n *SimNetwork) pump(ch chan simMsg, dst *simEndpoint) {
	for m := range ch {
		if wait := time.Until(m.release); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-dst.done:
				timer.Stop()
				return
			}
		}
		select {
		case <-dst.done:
			return
		default:
		}
		dst.mu.Lock()
		h := dst.h
		dst.mu.Unlock()
		if h != nil {
			h(m.from, m.mt, m.payload)
		}
	}
}

// Endpoint returns replica id's transport.
func (n *SimNetwork) Endpoint(id types.ReplicaID) Transport { return n.endpoints[id] }

// Sever cuts the directed link from a to b (messages dropped) until
// Heal is called.
func (n *SimNetwork) Sever(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.ReplicaID{a, b}] = true
}

// Heal restores the directed link from a to b.
func (n *SimNetwork) Heal(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]types.ReplicaID{a, b})
}

// Crash makes a replica unreachable (all inbound and outbound traffic
// dropped); used for the paper's failure experiments (Figure 17).
func (n *SimNetwork) Crash(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart undoes Crash.
func (n *SimNetwork) Restart(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// SeverBoth cuts both directions of the link between a and b.
func (n *SimNetwork) SeverBoth(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.ReplicaID{a, b}] = true
	n.blocked[[2]types.ReplicaID{b, a}] = true
}

// HealBoth restores both directions of the link between a and b.
func (n *SimNetwork) HealBoth(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]types.ReplicaID{a, b})
	delete(n.blocked, [2]types.ReplicaID{b, a})
}

// Partition severs every link that crosses group boundaries: replicas
// within one group keep talking, replicas in different groups cannot.
// Replicas in no group form an implicit final group. Existing severed
// links are preserved.
func (n *SimNetwork) Partition(groups ...[]types.ReplicaID) {
	groupOf := make(map[types.ReplicaID]int, n.cfg.N)
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi + 1
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.cfg.N; i++ {
		for j := 0; j < n.cfg.N; j++ {
			a, b := types.ReplicaID(i), types.ReplicaID(j)
			if a != b && groupOf[a] != groupOf[b] {
				n.blocked[[2]types.ReplicaID{a, b}] = true
			}
		}
	}
}

// Isolate severs every link to and from id (a reachability crash that
// still lets the replica talk to itself).
func (n *SimNetwork) Isolate(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.cfg.N; i++ {
		o := types.ReplicaID(i)
		if o == id {
			continue
		}
		n.blocked[[2]types.ReplicaID{id, o}] = true
		n.blocked[[2]types.ReplicaID{o, id}] = true
	}
}

// HealAll removes every severed link and restarts every crashed
// replica. Loss, duplication, and latency faults are untouched (see
// ClearFaults).
func (n *SimNetwork) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]types.ReplicaID]bool)
	n.crashed = make(map[types.ReplicaID]bool)
}

// SetLossRate adjusts the global message-loss probability at runtime
// (packet-loss bursts). The loss process stays on the seeded RNG.
func (n *SimNetwork) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = p
}

// SetLinkLoss overrides the loss probability of the directed link
// from a to b (asymmetric loss). A negative p removes the override.
func (n *SimNetwork) SetLinkLoss(a, b types.ReplicaID, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p < 0 {
		delete(n.linkLoss, [2]types.ReplicaID{a, b})
		return
	}
	n.linkLoss[[2]types.ReplicaID{a, b}] = p
}

// SetDuplicationRate makes each surviving message be delivered twice
// with probability p (independent delay draws, so the copies reorder).
func (n *SimNetwork) SetDuplicationRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dupRate = p
}

// SetExtraLatency adds d to every one-way delay (latency spike).
func (n *SimNetwork) SetExtraLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.extraDelay = d
}

// SetLinkLatency adds d to the directed link from a to b on top of
// the model and any global extra. d <= 0 removes the override.
func (n *SimNetwork) SetLinkLatency(a, b types.ReplicaID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.linkDelay, [2]types.ReplicaID{a, b})
		return
	}
	n.linkDelay[[2]types.ReplicaID{a, b}] = d
}

// SetInterceptor installs (or, with nil, removes) the message
// interceptor.
func (n *SimNetwork) SetInterceptor(fn Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.interceptor = fn
}

// ClearFaults resets loss, duplication, latency, and interception to
// the configured baseline. Severed links and crashes are untouched
// (see HealAll).
func (n *SimNetwork) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = n.cfg.DropRate
	n.linkLoss = make(map[[2]types.ReplicaID]float64)
	n.dupRate = 0
	n.extraDelay = 0
	n.linkDelay = make(map[[2]types.ReplicaID]time.Duration)
	n.interceptor = nil
}

// plan makes every per-send fault decision under one lock so the
// seeded RNG's draw sequence is well-defined: drop?, extra delay,
// duplicate?, and which interceptor (if any) applies to this send.
func (n *SimNetwork) plan(from, to types.ReplicaID) (drop bool, extra time.Duration, dup bool, ic Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] || n.crashed[to] || n.blocked[[2]types.ReplicaID{from, to}] {
		return true, 0, false, nil
	}
	p := n.lossRate
	if lp, ok := n.linkLoss[[2]types.ReplicaID{from, to}]; ok {
		p = lp
	}
	if p > 0 && n.rng.Float64() < p {
		return true, 0, false, nil
	}
	extra = n.extraDelay + n.linkDelay[[2]types.ReplicaID{from, to}]
	dup = n.dupRate > 0 && n.rng.Float64() < n.dupRate
	return false, extra, dup, n.interceptor
}

// Close shuts down every endpoint.
func (n *SimNetwork) Close() {
	for _, ep := range n.endpoints {
		_ = ep.Close()
	}
}

// --- simEndpoint (implements Transport) ---

func (e *simEndpoint) Self() types.ReplicaID { return e.id }

func (e *simEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *simEndpoint) Send(to types.ReplicaID, mt MsgType, payload []byte) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	if int(to) >= len(e.net.endpoints) {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	drop, extra, dup, ic := e.net.plan(e.id, to)
	if drop {
		return nil // silently lost, like the wire
	}
	if ic != nil {
		out, ok := ic(e.id, to, mt, payload)
		if !ok {
			return nil // intercepted and dropped
		}
		payload = out
	}
	m := simMsg{
		from:    e.id,
		mt:      mt,
		payload: append([]byte(nil), payload...),
		release: time.Now().Add(e.net.cfg.Latency(e.id, to) + extra),
	}
	select {
	case e.outs[to] <- m:
	case <-e.done:
		return ErrClosed
	}
	if dup {
		d := m // copies the struct; payload already cloned above
		d.release = time.Now().Add(e.net.cfg.Latency(e.id, to) + extra)
		select {
		case e.outs[to] <- d:
		case <-e.done:
			return ErrClosed
		}
	}
	return nil
}

func (e *simEndpoint) Broadcast(mt MsgType, payload []byte) error {
	for i := 0; i < e.net.cfg.Committee; i++ {
		if err := e.Send(types.ReplicaID(i), mt, payload); err != nil {
			return err
		}
	}
	return nil
}

func (e *simEndpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}
