package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"thunderbolt/internal/types"
)

// LatencyModel returns the one-way delay for a message from one
// replica to another. Jitter, asymmetry, and locality are all up to
// the model.
type LatencyModel func(from, to types.ReplicaID) time.Duration

// LANModel approximates a same-datacenter network: ~0.2ms ± jitter.
func LANModel() LatencyModel {
	return UniformLatency(150*time.Microsecond, 300*time.Microsecond)
}

// WANModel approximates a geo-distributed network: ~40ms ± jitter.
func WANModel() LatencyModel {
	return UniformLatency(30*time.Millisecond, 50*time.Millisecond)
}

// ZeroLatency delivers instantly (protocol-logic tests).
func ZeroLatency() LatencyModel {
	return func(types.ReplicaID, types.ReplicaID) time.Duration { return 0 }
}

// UniformLatency draws each delay uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyModel {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	return func(types.ReplicaID, types.ReplicaID) time.Duration {
		if hi <= lo {
			return lo
		}
		mu.Lock()
		d := lo + time.Duration(rng.Int63n(int64(hi-lo)))
		mu.Unlock()
		return d
	}
}

// SimConfig parameterizes an in-process network.
type SimConfig struct {
	// N is the number of endpoints.
	N int
	// Latency models one-way link delay; nil means ZeroLatency.
	Latency LatencyModel
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// Seed feeds the loss process.
	Seed int64
	// QueueLen bounds each link's in-flight queue (default 4096);
	// overflow blocks the sender, modelling backpressure.
	QueueLen int
}

// SimNetwork is a set of in-process endpoints joined by per-link FIFO
// queues with simulated delay.
type SimNetwork struct {
	cfg       SimConfig
	endpoints []*simEndpoint

	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]types.ReplicaID]bool // severed links
	crashed map[types.ReplicaID]bool
}

type simMsg struct {
	from    types.ReplicaID
	mt      MsgType
	payload []byte
	release time.Time
}

type simEndpoint struct {
	net  *SimNetwork
	id   types.ReplicaID
	mu   sync.Mutex
	h    Handler
	outs []chan simMsg // one queue per destination, owned by sender
	done chan struct{}
	once sync.Once
}

// NewSimNetwork builds the network and starts its delivery goroutines.
func NewSimNetwork(cfg SimConfig) *SimNetwork {
	if cfg.Latency == nil {
		cfg.Latency = ZeroLatency()
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	n := &SimNetwork{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		blocked: make(map[[2]types.ReplicaID]bool),
		crashed: make(map[types.ReplicaID]bool),
	}
	n.endpoints = make([]*simEndpoint, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ep := &simEndpoint{
			net:  n,
			id:   types.ReplicaID(i),
			outs: make([]chan simMsg, cfg.N),
			done: make(chan struct{}),
		}
		n.endpoints[i] = ep
	}
	// Start one delivery pump per (sender, receiver) link: FIFO order
	// with per-message release times.
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			ch := make(chan simMsg, cfg.QueueLen)
			n.endpoints[i].outs[j] = ch
			go n.pump(ch, n.endpoints[j])
		}
	}
	return n
}

// pump delivers one link's messages in order, honoring release times.
func (n *SimNetwork) pump(ch chan simMsg, dst *simEndpoint) {
	for m := range ch {
		if wait := time.Until(m.release); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-dst.done:
				timer.Stop()
				return
			}
		}
		select {
		case <-dst.done:
			return
		default:
		}
		dst.mu.Lock()
		h := dst.h
		dst.mu.Unlock()
		if h != nil {
			h(m.from, m.mt, m.payload)
		}
	}
}

// Endpoint returns replica id's transport.
func (n *SimNetwork) Endpoint(id types.ReplicaID) Transport { return n.endpoints[id] }

// Sever cuts the directed link from a to b (messages dropped) until
// Heal is called.
func (n *SimNetwork) Sever(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.ReplicaID{a, b}] = true
}

// Heal restores the directed link from a to b.
func (n *SimNetwork) Heal(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]types.ReplicaID{a, b})
}

// Crash makes a replica unreachable (all inbound and outbound traffic
// dropped); used for the paper's failure experiments (Figure 17).
func (n *SimNetwork) Crash(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart undoes Crash.
func (n *SimNetwork) Restart(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// lose decides whether to drop a message on link (from, to).
func (n *SimNetwork) lose(from, to types.ReplicaID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] || n.crashed[to] || n.blocked[[2]types.ReplicaID{from, to}] {
		return true
	}
	return n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
}

// Close shuts down every endpoint.
func (n *SimNetwork) Close() {
	for _, ep := range n.endpoints {
		_ = ep.Close()
	}
}

// --- simEndpoint (implements Transport) ---

func (e *simEndpoint) Self() types.ReplicaID { return e.id }

func (e *simEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *simEndpoint) Send(to types.ReplicaID, mt MsgType, payload []byte) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	if int(to) >= len(e.net.endpoints) {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	if e.net.lose(e.id, to) {
		return nil // silently lost, like the wire
	}
	m := simMsg{
		from:    e.id,
		mt:      mt,
		payload: append([]byte(nil), payload...),
		release: time.Now().Add(e.net.cfg.Latency(e.id, to)),
	}
	select {
	case e.outs[to] <- m:
	case <-e.done:
		return ErrClosed
	}
	return nil
}

func (e *simEndpoint) Broadcast(mt MsgType, payload []byte) error {
	for i := range e.net.endpoints {
		if err := e.Send(types.ReplicaID(i), mt, payload); err != nil {
			return err
		}
	}
	return nil
}

func (e *simEndpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}
