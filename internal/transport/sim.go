package transport

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"thunderbolt/internal/types"
)

// LatencyModel returns the one-way delay for a message from one
// replica to another. Jitter, asymmetry, and locality are all up to
// the model.
type LatencyModel func(from, to types.ReplicaID) time.Duration

// LANModel approximates a same-datacenter network: ~0.2ms ± jitter.
func LANModel() LatencyModel {
	return UniformLatency(150*time.Microsecond, 300*time.Microsecond)
}

// WANModel approximates a geo-distributed network: ~40ms ± jitter.
func WANModel() LatencyModel {
	return UniformLatency(30*time.Millisecond, 50*time.Millisecond)
}

// ZeroLatency delivers instantly (protocol-logic tests).
func ZeroLatency() LatencyModel {
	return func(types.ReplicaID, types.ReplicaID) time.Duration { return 0 }
}

// UniformLatency draws each delay uniformly from [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyModel {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	return func(types.ReplicaID, types.ReplicaID) time.Duration {
		if hi <= lo {
			return lo
		}
		mu.Lock()
		d := lo + time.Duration(rng.Int63n(int64(hi-lo)))
		mu.Unlock()
		return d
	}
}

// SimConfig parameterizes an in-process network.
type SimConfig struct {
	// N is the number of endpoints.
	N int
	// Committee bounds Broadcast fan-out: endpoints [0, Committee) are
	// committee replicas, endpoints [Committee, N) are client
	// endpoints (gateway clients) that are addressable by Send but
	// excluded from protocol broadcasts. 0 means every endpoint is a
	// committee member.
	Committee int
	// Latency models one-way link delay; nil means ZeroLatency.
	Latency LatencyModel
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// Seed feeds the loss process.
	Seed int64
	// QueueLen bounds each link's in-flight queue (default 4096);
	// overflow blocks the sender, modelling backpressure.
	QueueLen int
}

// SimNetwork is a set of in-process endpoints joined by per-link FIFO
// queues with simulated delay. Beyond the static SimConfig knobs it
// supports runtime fault injection — link severing, replica crashes,
// adjustable loss and duplication rates, and latency spikes — all
// driven by the single seeded RNG so fault decisions replay
// deterministically for a given seed and message sequence.
type SimNetwork struct {
	cfg       SimConfig
	endpoints []*simEndpoint

	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]types.ReplicaID]bool // severed links
	crashed map[types.ReplicaID]bool

	// runtime-adjustable fault state (chaos harness knobs)
	lossRate    float64                              // global loss probability
	linkLoss    map[[2]types.ReplicaID]float64       // per-link override
	dupRate     float64                              // duplicate-delivery probability
	extraDelay  time.Duration                        // global added one-way delay
	linkDelay   map[[2]types.ReplicaID]time.Duration // per-link added delay
	interceptor Interceptor                          // Byzantine message mutation

	// Delivery state, owned by the dispatcher goroutine's lock (dmu,
	// separate from the fault-plan mu so fault injection never stalls
	// behind delivery bookkeeping).
	dmu      sync.Mutex
	dcond    *sync.Cond    // wakes senders blocked on a full link
	heap     []simMsg      // min-heap of in-flight messages by (release, seq)
	seq      uint64        // tiebreak: global send order
	inflight []int         // per (from*N+to) link in-flight counts
	lastRel  []time.Time   // per-link FIFO release clamp
	wake     chan struct{} // kicks the dispatcher on enqueue
	ddone    chan struct{} // closes the dispatcher
	dclosed  bool
}

// Interceptor inspects every surviving message before it is enqueued
// and may rewrite the payload or drop it (return ok=false). It is the
// chaos harness's Byzantine hook: a "lying" peer is modelled by
// mutating its outbound payloads on the wire. The returned slice is
// cloned by the network, and the function runs on the sender's
// goroutine — keep it fast and reentrant.
type Interceptor func(from, to types.ReplicaID, mt MsgType, payload []byte) (out []byte, ok bool)

type simMsg struct {
	from    types.ReplicaID
	to      types.ReplicaID
	mt      MsgType
	payload []byte
	release time.Time
	seq     uint64
}

type simEndpoint struct {
	net  *SimNetwork
	id   types.ReplicaID
	mu   sync.Mutex
	h    Handler
	done chan struct{}
	once sync.Once
}

// NewSimNetwork builds the network and starts its delivery goroutine.
func NewSimNetwork(cfg SimConfig) *SimNetwork {
	if cfg.Latency == nil {
		cfg.Latency = ZeroLatency()
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.Committee <= 0 || cfg.Committee > cfg.N {
		cfg.Committee = cfg.N
	}
	n := &SimNetwork{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		blocked:   make(map[[2]types.ReplicaID]bool),
		crashed:   make(map[types.ReplicaID]bool),
		lossRate:  cfg.DropRate,
		linkLoss:  make(map[[2]types.ReplicaID]float64),
		linkDelay: make(map[[2]types.ReplicaID]time.Duration),
		inflight:  make([]int, cfg.N*cfg.N),
		lastRel:   make([]time.Time, cfg.N*cfg.N),
		wake:      make(chan struct{}, 1),
		ddone:     make(chan struct{}),
	}
	n.dcond = sync.NewCond(&n.dmu)
	n.endpoints = make([]*simEndpoint, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n.endpoints[i] = &simEndpoint{
			net:  n,
			id:   types.ReplicaID(i),
			done: make(chan struct{}),
		}
	}
	go n.dispatch()
	return n
}

// spinHorizon is how close to the next release time the dispatcher
// switches from a timer sleep to a yield-spin. Go's sub-millisecond
// timers overshoot by up to ~1ms when the process is otherwise idle
// (the netpoller rounds short sleeps up), which would inflate every
// modeled LAN hop (~0.2ms) to ~1ms and hide protocol-level latency
// wins behind harness noise. The spin yields the processor each
// iteration, so co-scheduled replicas keep running at GOMAXPROCS=1.
const spinHorizon = time.Millisecond

// dispatch is the single delivery goroutine: it owns a min-heap of
// in-flight messages ordered by (release, seq) and delivers each one
// when its release time arrives. Per-link FIFO order is preserved by
// construction — enqueue clamps each link's release times to be
// monotonic (see enqueue) — so delivery order per link equals send
// order, exactly as the old per-link pumps behaved.
func (n *SimNetwork) dispatch() {
	var batch []simMsg
	var timer *time.Timer
	for {
		n.dmu.Lock()
		if n.dclosed {
			n.dmu.Unlock()
			return
		}
		now := time.Now()
		batch = batch[:0]
		for len(n.heap) > 0 && !n.heap[0].release.After(now) {
			m := n.popHeap()
			n.inflight[int(m.from)*n.cfg.N+int(m.to)]--
			batch = append(batch, m)
		}
		wait := time.Duration(-1)
		if len(n.heap) > 0 {
			wait = n.heap[0].release.Sub(now)
		}
		if len(batch) > 0 {
			n.dcond.Broadcast() // senders blocked on a full link
		}
		n.dmu.Unlock()
		for _, m := range batch {
			dst := n.endpoints[m.to]
			select {
			case <-dst.done:
				continue
			default:
			}
			dst.mu.Lock()
			h := dst.h
			dst.mu.Unlock()
			if h != nil {
				h(m.from, m.mt, m.payload)
			}
		}
		if len(batch) > 0 {
			continue // deliveries may have triggered sends; re-check now
		}
		switch {
		case wait < 0: // nothing in flight: block until a send arrives
			select {
			case <-n.wake:
			case <-n.ddone:
				return
			}
		case wait > spinHorizon: // far deadline: timer sleep most of it
			// One timer reused across the loop; a fresh NewTimer per
			// sleep was a measurable allocation source under load.
			if timer == nil {
				timer = time.NewTimer(wait - spinHorizon)
			} else {
				timer.Reset(wait - spinHorizon)
			}
			fired := false
			select {
			case <-timer.C:
				fired = true
			case <-n.wake: // an earlier message may have been enqueued
			case <-n.ddone:
				timer.Stop()
				return
			}
			if !fired && !timer.Stop() {
				select { // drain so the next Reset starts clean
				case <-timer.C:
				default:
				}
			}
		default: // near deadline: yield-spin for sub-ms accuracy
			// Spin without retaking the dispatch lock: the deadline is
			// known, so only the clock and the wake channel need
			// polling, and the clock every few yields — re-running the
			// locked heap scan per yield made time.Now and the lock the
			// two hottest rows of the whole-cluster CPU profile.
			deadline := now.Add(wait)
		spin:
			for i := 1; ; i++ {
				runtime.Gosched()
				// Single-case receive with default compiles to a
				// non-blocking runtime recv, not selectgo; the combined
				// three-way select here was the spin's hottest row.
				select {
				case <-n.wake: // an earlier message may have been enqueued
					break spin
				default:
				}
				if i&7 == 0 {
					// Every 8th yield: at GOMAXPROCS=1 each Gosched runs
					// whatever work is runnable, so polling the clock more
					// often than this buys no delivery accuracy — it only
					// made time.Now a top row of the cluster profile.
					if !time.Now().Before(deadline) {
						break spin
					}
					select {
					case <-n.ddone: // shutdown: rare, so poll with the clock
						return
					default:
					}
				}
			}
		}
	}
}

// enqueue places one message in flight. It blocks while the link's
// in-flight count is at QueueLen (backpressure), and clamps the
// release time so each link delivers in send order.
func (n *SimNetwork) enqueue(from *simEndpoint, to types.ReplicaID, mt MsgType, payload []byte, delay time.Duration) error {
	link := int(from.id)*n.cfg.N + int(to)
	n.dmu.Lock()
	for n.inflight[link] >= n.cfg.QueueLen && !n.dclosed {
		select {
		case <-from.done:
			n.dmu.Unlock()
			return ErrClosed
		default:
		}
		n.dcond.Wait()
	}
	if n.dclosed {
		n.dmu.Unlock()
		return ErrClosed
	}
	rel := time.Now().Add(delay)
	if rel.Before(n.lastRel[link]) {
		rel = n.lastRel[link] // FIFO: never release before a predecessor
	}
	n.lastRel[link] = rel
	n.seq++
	n.pushHeap(simMsg{from: from.id, to: to, mt: mt, payload: payload, release: rel, seq: n.seq})
	n.inflight[link]++
	n.dmu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return nil
}

// msgLess orders the delivery heap by release time, then send order.
func msgLess(a, b simMsg) bool {
	if !a.release.Equal(b.release) {
		return a.release.Before(b.release)
	}
	return a.seq < b.seq
}

func (n *SimNetwork) pushHeap(m simMsg) {
	n.heap = append(n.heap, m)
	i := len(n.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(n.heap[i], n.heap[p]) {
			break
		}
		n.heap[i], n.heap[p] = n.heap[p], n.heap[i]
		i = p
	}
}

func (n *SimNetwork) popHeap() simMsg {
	top := n.heap[0]
	last := len(n.heap) - 1
	n.heap[0] = n.heap[last]
	n.heap[last] = simMsg{} // release payload reference
	n.heap = n.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && msgLess(n.heap[l], n.heap[small]) {
			small = l
		}
		if r < last && msgLess(n.heap[r], n.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		n.heap[i], n.heap[small] = n.heap[small], n.heap[i]
		i = small
	}
	return top
}

// Endpoint returns replica id's transport.
func (n *SimNetwork) Endpoint(id types.ReplicaID) Transport { return n.endpoints[id] }

// Sever cuts the directed link from a to b (messages dropped) until
// Heal is called.
func (n *SimNetwork) Sever(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.ReplicaID{a, b}] = true
}

// Heal restores the directed link from a to b.
func (n *SimNetwork) Heal(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]types.ReplicaID{a, b})
}

// Crash makes a replica unreachable (all inbound and outbound traffic
// dropped); used for the paper's failure experiments (Figure 17).
func (n *SimNetwork) Crash(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart undoes Crash.
func (n *SimNetwork) Restart(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// SeverBoth cuts both directions of the link between a and b.
func (n *SimNetwork) SeverBoth(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.ReplicaID{a, b}] = true
	n.blocked[[2]types.ReplicaID{b, a}] = true
}

// HealBoth restores both directions of the link between a and b.
func (n *SimNetwork) HealBoth(a, b types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]types.ReplicaID{a, b})
	delete(n.blocked, [2]types.ReplicaID{b, a})
}

// Partition severs every link that crosses group boundaries: replicas
// within one group keep talking, replicas in different groups cannot.
// Replicas in no group form an implicit final group. Existing severed
// links are preserved.
func (n *SimNetwork) Partition(groups ...[]types.ReplicaID) {
	groupOf := make(map[types.ReplicaID]int, n.cfg.N)
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi + 1
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.cfg.N; i++ {
		for j := 0; j < n.cfg.N; j++ {
			a, b := types.ReplicaID(i), types.ReplicaID(j)
			if a != b && groupOf[a] != groupOf[b] {
				n.blocked[[2]types.ReplicaID{a, b}] = true
			}
		}
	}
}

// Isolate severs every link to and from id (a reachability crash that
// still lets the replica talk to itself).
func (n *SimNetwork) Isolate(id types.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.cfg.N; i++ {
		o := types.ReplicaID(i)
		if o == id {
			continue
		}
		n.blocked[[2]types.ReplicaID{id, o}] = true
		n.blocked[[2]types.ReplicaID{o, id}] = true
	}
}

// HealAll removes every severed link and restarts every crashed
// replica. Loss, duplication, and latency faults are untouched (see
// ClearFaults).
func (n *SimNetwork) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]types.ReplicaID]bool)
	n.crashed = make(map[types.ReplicaID]bool)
}

// SetLossRate adjusts the global message-loss probability at runtime
// (packet-loss bursts). The loss process stays on the seeded RNG.
func (n *SimNetwork) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = p
}

// SetLinkLoss overrides the loss probability of the directed link
// from a to b (asymmetric loss). A negative p removes the override.
func (n *SimNetwork) SetLinkLoss(a, b types.ReplicaID, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p < 0 {
		delete(n.linkLoss, [2]types.ReplicaID{a, b})
		return
	}
	n.linkLoss[[2]types.ReplicaID{a, b}] = p
}

// SetDuplicationRate makes each surviving message be delivered twice
// with probability p (independent delay draws, so the copies reorder).
func (n *SimNetwork) SetDuplicationRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dupRate = p
}

// SetExtraLatency adds d to every one-way delay (latency spike).
func (n *SimNetwork) SetExtraLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.extraDelay = d
}

// SetLinkLatency adds d to the directed link from a to b on top of
// the model and any global extra. d <= 0 removes the override.
func (n *SimNetwork) SetLinkLatency(a, b types.ReplicaID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.linkDelay, [2]types.ReplicaID{a, b})
		return
	}
	n.linkDelay[[2]types.ReplicaID{a, b}] = d
}

// SetInterceptor installs (or, with nil, removes) the message
// interceptor.
func (n *SimNetwork) SetInterceptor(fn Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.interceptor = fn
}

// ClearFaults resets loss, duplication, latency, and interception to
// the configured baseline. Severed links and crashes are untouched
// (see HealAll).
func (n *SimNetwork) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = n.cfg.DropRate
	n.linkLoss = make(map[[2]types.ReplicaID]float64)
	n.dupRate = 0
	n.extraDelay = 0
	n.linkDelay = make(map[[2]types.ReplicaID]time.Duration)
	n.interceptor = nil
}

// plan makes every per-send fault decision under one lock so the
// seeded RNG's draw sequence is well-defined: drop?, extra delay,
// duplicate?, and which interceptor (if any) applies to this send.
func (n *SimNetwork) plan(from, to types.ReplicaID) (drop bool, extra time.Duration, dup bool, ic Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] || n.crashed[to] || n.blocked[[2]types.ReplicaID{from, to}] {
		return true, 0, false, nil
	}
	p := n.lossRate
	if lp, ok := n.linkLoss[[2]types.ReplicaID{from, to}]; ok {
		p = lp
	}
	if p > 0 && n.rng.Float64() < p {
		return true, 0, false, nil
	}
	extra = n.extraDelay + n.linkDelay[[2]types.ReplicaID{from, to}]
	dup = n.dupRate > 0 && n.rng.Float64() < n.dupRate
	return false, extra, dup, n.interceptor
}

// Close shuts down every endpoint and the delivery dispatcher.
func (n *SimNetwork) Close() {
	for _, ep := range n.endpoints {
		_ = ep.Close()
	}
	n.dmu.Lock()
	if !n.dclosed {
		n.dclosed = true
		close(n.ddone)
		n.dcond.Broadcast()
	}
	n.dmu.Unlock()
}

// --- simEndpoint (implements Transport) ---

func (e *simEndpoint) Self() types.ReplicaID { return e.id }

func (e *simEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *simEndpoint) Send(to types.ReplicaID, mt MsgType, payload []byte) error {
	return e.send(to, mt, payload, false)
}

// send enqueues one message. owned=true means the payload is already a
// clone the network may keep (Broadcast's shared copy); owned=false
// means the caller retains the buffer, so clone before enqueueing.
func (e *simEndpoint) send(to types.ReplicaID, mt MsgType, payload []byte, owned bool) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	if int(to) >= len(e.net.endpoints) {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	drop, extra, dup, ic := e.net.plan(e.id, to)
	if drop {
		return nil // silently lost, like the wire
	}
	if ic != nil {
		out, ok := ic(e.id, to, mt, payload)
		if !ok {
			return nil // intercepted and dropped
		}
		// The interceptor may have returned (or rewritten into) a buffer
		// that aliases a shared broadcast clone; re-clone for this link.
		payload = out
		owned = false
	}
	if !owned {
		payload = append([]byte(nil), payload...)
	}
	if err := e.net.enqueue(e, to, mt, payload, e.net.cfg.Latency(e.id, to)+extra); err != nil {
		return err
	}
	if dup {
		// The duplicate shares the clone (read-only on delivery) but
		// draws its own delay, like the old per-link pumps.
		if err := e.net.enqueue(e, to, mt, payload, e.net.cfg.Latency(e.id, to)+extra); err != nil {
			return err
		}
	}
	return nil
}

func (e *simEndpoint) Broadcast(mt MsgType, payload []byte) error {
	// One clone shared by every recipient: delivery is read-only by
	// contract (the fault-plan duplicate above already leans on that),
	// so per-recipient clones only multiplied allocator and GC load —
	// broadcast payloads were the single largest allocation site in the
	// whole-cluster profile.
	cloned := append([]byte(nil), payload...)
	for i := 0; i < e.net.cfg.Committee; i++ {
		if err := e.send(types.ReplicaID(i), mt, cloned, true); err != nil {
			return err
		}
	}
	return nil
}

func (e *simEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		// Wake any sender blocked on one of this endpoint's full links
		// so it can observe the closed state.
		e.net.dmu.Lock()
		e.net.dcond.Broadcast()
		e.net.dmu.Unlock()
	})
	return nil
}
