package workload

import "thunderbolt/internal/vm"

// SendPaymentProgram is the SendPayment contract compiled for the
// bytecode VM: args are (source account, destination account, amount).
// It is behaviorally identical to the native contract, demonstrating
// that the Concurrent Executor needs no knowledge of contract
// internals — only the State accesses it observes at runtime.
func SendPaymentProgram() *vm.Program {
	return vm.MustAssemble(`
		.const ck "c:"
		; src.checking -= amount
		sconst ck
		sarg 0
		scat
		load
		argi 2
		sub
		sconst ck
		sarg 0
		scat
		store
		; dst.checking += amount
		sconst ck
		sarg 1
		scat
		load
		argi 2
		add
		sconst ck
		sarg 1
		scat
		store
		halt
	`)
}

// GetBalanceProgram is GetBalance compiled for the bytecode VM: it
// reads both balances of args[0] and discards them.
func GetBalanceProgram() *vm.Program {
	return vm.MustAssemble(`
		.const ck "c:"
		.const sv "s:"
		sconst ck
		sarg 0
		scat
		load
		pop
		sconst sv
		sarg 0
		scat
		load
		pop
		halt
	`)
}
