package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// storeState adapts a storage.Overlay to contract.State for direct
// contract execution in tests.
type storeState struct{ o *storage.Overlay }

func (s storeState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s storeState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func newBank(t *testing.T, n int, checking, savings int64) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	RegisterSmallBank(reg)
	st := storage.New()
	InitAccounts(st, n, checking, savings)
	return reg, st
}

func exec(t *testing.T, reg *contract.Registry, st *storage.Store, name string, args ...[]byte) error {
	t.Helper()
	o := storage.NewOverlay(st)
	c, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("contract %q not registered", name)
	}
	if err := c.Execute(storeState{o}, args); err != nil {
		return err
	}
	o.Flush()
	return nil
}

func balance(t *testing.T, st *storage.Store, k types.Key) int64 {
	t.Helper()
	v, _ := st.Get(k)
	b, err := contract.DecodeInt64(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSendPayment(t *testing.T) {
	reg, st := newBank(t, 2, 100, 50)
	a, b := AccountName(0), AccountName(1)
	if err := exec(t, reg, st, ContractSendPayment, []byte(a), []byte(b), contract.EncodeInt64(30)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != 70 {
		t.Fatalf("src=%d want 70", got)
	}
	if got := balance(t, st, CheckingKey(b)); got != 130 {
		t.Fatalf("dst=%d want 130", got)
	}
	// Overdraft goes negative rather than failing.
	if err := exec(t, reg, st, ContractSendPayment, []byte(a), []byte(b), contract.EncodeInt64(100)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != -30 {
		t.Fatalf("src=%d want -30", got)
	}
}

func TestDepositAndSavings(t *testing.T) {
	reg, st := newBank(t, 1, 10, 20)
	a := AccountName(0)
	if err := exec(t, reg, st, ContractDepositChecking, []byte(a), contract.EncodeInt64(5)); err != nil {
		t.Fatal(err)
	}
	if err := exec(t, reg, st, ContractTransactSavings, []byte(a), contract.EncodeInt64(-7)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != 15 {
		t.Fatalf("checking=%d want 15", got)
	}
	if got := balance(t, st, SavingsKey(a)); got != 13 {
		t.Fatalf("savings=%d want 13", got)
	}
}

func TestWriteCheckPenalty(t *testing.T) {
	reg, st := newBank(t, 1, 10, 5)
	a := AccountName(0)
	// Sufficient funds: plain deduction.
	if err := exec(t, reg, st, ContractWriteCheck, []byte(a), contract.EncodeInt64(12)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != -2 {
		t.Fatalf("checking=%d want -2", got)
	}
	// Insufficient combined funds: penalty of 1.
	if err := exec(t, reg, st, ContractWriteCheck, []byte(a), contract.EncodeInt64(10)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != -13 {
		t.Fatalf("checking=%d want -13 (with penalty)", got)
	}
}

func TestAmalgamate(t *testing.T) {
	reg, st := newBank(t, 2, 100, 40)
	a, b := AccountName(0), AccountName(1)
	if err := exec(t, reg, st, ContractAmalgamate, []byte(a), []byte(b)); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, st, CheckingKey(a)); got != 0 {
		t.Fatalf("src checking=%d want 0", got)
	}
	if got := balance(t, st, SavingsKey(a)); got != 0 {
		t.Fatalf("src savings=%d want 0", got)
	}
	if got := balance(t, st, CheckingKey(b)); got != 240 {
		t.Fatalf("dst checking=%d want 240", got)
	}
}

func TestGetBalanceReadsOnly(t *testing.T) {
	reg, st := newBank(t, 1, 10, 20)
	o := storage.NewOverlay(st)
	c, _ := reg.Lookup(ContractGetBalance)
	if err := c.Execute(storeState{o}, [][]byte{[]byte(AccountName(0))}); err != nil {
		t.Fatal(err)
	}
	if len(o.Writes()) != 0 {
		t.Fatalf("GetBalance wrote: %+v", o.Writes())
	}
}

func TestContractArgErrors(t *testing.T) {
	reg, st := newBank(t, 1, 0, 0)
	if err := exec(t, reg, st, ContractSendPayment, []byte("a")); !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("missing args must fail terminally, got %v", err)
	}
	if err := exec(t, reg, st, ContractDepositChecking, []byte("a"), []byte("xx")); !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("malformed amount must fail terminally, got %v", err)
	}
}

func TestBalanceConservation(t *testing.T) {
	const n = 20
	reg, st := newBank(t, n, 100, 100)
	want, err := TotalBalance(st, n)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(Config{Accounts: n, Shards: 4, Theta: 0.85, ReadRatio: 0, Seed: 7})
	applied := 0
	for applied < 500 {
		tx := g.Next()
		// Only transfers conserve total balance; the generator also
		// emits deposits when a shard has no transfer partner.
		if tx.Contract != ContractSendPayment && tx.Contract != ContractAmalgamate {
			continue
		}
		o := storage.NewOverlay(st)
		if err := vm.ExecuteTx(reg, storeState{o}, tx); err != nil {
			t.Fatal(err)
		}
		o.Flush()
		applied++
	}
	got, err := TotalBalance(st, n)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("money not conserved: %d -> %d", want, got)
	}
}

func TestVMProgramsMatchNativeContracts(t *testing.T) {
	regN, stN := newBank(t, 2, 100, 50)
	_, stV := newBank(t, 2, 100, 50)
	a, b := AccountName(0), AccountName(1)
	args := [][]byte{[]byte(a), []byte(b), contract.EncodeInt64(37)}

	if err := exec(t, regN, stN, ContractSendPayment, args...); err != nil {
		t.Fatal(err)
	}
	o := storage.NewOverlay(stV)
	if err := vm.Run(SendPaymentProgram(), storeState{o}, args, vm.Limits{}); err != nil {
		t.Fatal(err)
	}
	o.Flush()
	for _, k := range []types.Key{CheckingKey(a), CheckingKey(b)} {
		if nv, vv := balance(t, stN, k), balance(t, stV, k); nv != vv {
			t.Fatalf("%s: native=%d vm=%d", k, nv, vv)
		}
	}
	// GetBalance program reads cleanly.
	o2 := storage.NewOverlay(stV)
	if err := vm.Run(GetBalanceProgram(), storeState{o2}, [][]byte{[]byte(a)}, vm.Limits{}); err != nil {
		t.Fatal(err)
	}
	if len(o2.Writes()) != 0 {
		t.Fatal("GetBalance program wrote state")
	}
}

func TestExecuteTxDispatch(t *testing.T) {
	reg, st := newBank(t, 2, 100, 0)
	// Named contract path.
	o := storage.NewOverlay(st)
	tx := &types.Transaction{Contract: ContractDepositChecking,
		Args: [][]byte{[]byte(AccountName(0)), contract.EncodeInt64(1)}}
	if err := vm.ExecuteTx(reg, storeState{o}, tx); err != nil {
		t.Fatal(err)
	}
	// Bytecode path.
	code, _ := SendPaymentProgram().MarshalBinary()
	tx2 := &types.Transaction{Code: code,
		Args: [][]byte{[]byte(AccountName(0)), []byte(AccountName(1)), contract.EncodeInt64(1)}}
	if err := vm.ExecuteTx(reg, storeState{o}, tx2); err != nil {
		t.Fatal(err)
	}
	// Unknown contract fails terminally.
	tx3 := &types.Transaction{Contract: "nope"}
	if err := vm.ExecuteTx(reg, storeState{o}, tx3); !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("unknown contract: %v", err)
	}
	// Corrupt bytecode fails terminally.
	tx4 := &types.Transaction{Code: []byte{1, 2, 3}}
	if err := vm.ExecuteTx(reg, storeState{o}, tx4); !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("corrupt code: %v", err)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 0.85)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 10 which must dominate rank 90.
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Fatalf("skew violated: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// Under θ=0.85 the head is hot: rank 0 should carry >5% of draws.
	if float64(counts[0])/draws < 0.05 {
		t.Fatalf("head not hot enough: %f", float64(counts[0])/draws)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("theta=0 not uniform: rank %d has %f", i, frac)
		}
	}
}

func TestZipfBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 1000} {
		for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
			z := NewZipf(rng, n, theta)
			for i := 0; i < 2000; i++ {
				if v := z.Next(); v >= uint64(n) {
					t.Fatalf("n=%d theta=%f: sample %d out of range", n, theta, v)
				}
			}
		}
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(rand.New(rand.NewSource(1)), 0, 0.5) },
		func() { NewZipf(rand.New(rand.NewSource(1)), 10, 1.0) },
		func() { NewZipf(rand.New(rand.NewSource(1)), 10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneratorSingleShardConfinement(t *testing.T) {
	g := NewGenerator(Config{Accounts: 200, Shards: 8, Theta: 0.85, ReadRatio: 0.5, Seed: 1})
	smap := types.NewShardMap(8)
	for s := types.ShardID(0); s < 8; s++ {
		for _, tx := range g.BatchForShard(s, 50) {
			if tx.Kind != types.SingleShard || len(tx.Shards) != 1 || tx.Shards[0] != s {
				t.Fatalf("tx not confined to shard %d: %+v", s, tx)
			}
			// Every touched account must live in s.
			for _, a := range tx.Args {
				if len(a) == 8 {
					continue // amount
				}
				if smap.ShardOf(types.Key(a)) != s {
					t.Fatalf("account %q not in shard %d", a, s)
				}
			}
		}
	}
}

func TestGeneratorCrossShardFraction(t *testing.T) {
	g := NewGenerator(Config{Accounts: 500, Shards: 4, Theta: 0.5, ReadRatio: 0, CrossPct: 0.4, Seed: 5})
	cross := 0
	const n = 4000
	for _, tx := range g.Batch(n) {
		if tx.Kind == types.CrossShard {
			cross++
			if len(tx.Shards) != 2 || tx.Shards[0] == tx.Shards[1] {
				t.Fatalf("cross tx shards malformed: %v", tx.Shards)
			}
			if tx.Shards[0] > tx.Shards[1] {
				t.Fatalf("cross tx shards not sorted: %v", tx.Shards)
			}
		}
	}
	frac := float64(cross) / n
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("cross fraction %f want ~0.4", frac)
	}
}

func TestGeneratorReadRatio(t *testing.T) {
	g := NewGenerator(Config{Accounts: 500, Shards: 2, Theta: 0.85, ReadRatio: 0.7, Seed: 9})
	reads := 0
	const n = 4000
	for _, tx := range g.Batch(n) {
		if tx.Contract == ContractGetBalance {
			reads++
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("read fraction %f want ~0.7", frac)
	}
}

func TestGeneratorDeterministicAndSplitIndependent(t *testing.T) {
	cfg := Config{Accounts: 100, Shards: 4, Theta: 0.85, ReadRatio: 0.5, Seed: 11}
	a := NewGenerator(cfg)
	b := NewGenerator(cfg)
	for i := 0; i < 100; i++ {
		if a.Next().ID() != b.Next().ID() {
			t.Fatal("same seed diverged")
		}
	}
	c := a.Split(1)
	d := a.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next().ID() == d.Next().ID() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams correlated: %d/100 identical", same)
	}
}

func TestGeneratorMixProducesAllTypes(t *testing.T) {
	g := NewGenerator(Config{Accounts: 300, Shards: 2, Theta: 0.5, Mix: true, Seed: 3})
	seen := map[string]bool{}
	for _, tx := range g.Batch(3000) {
		seen[tx.Contract] = true
	}
	for _, c := range []string{ContractGetBalance, ContractSendPayment, ContractDepositChecking,
		ContractTransactSavings, ContractWriteCheck, ContractAmalgamate} {
		if !seen[c] {
			t.Fatalf("mix never produced %s", c)
		}
	}
}

func TestGeneratorNoncesUnique(t *testing.T) {
	g := NewGenerator(Config{Accounts: 50, Shards: 2, Seed: 1})
	seen := map[types.Digest]bool{}
	for _, tx := range g.Batch(1000) {
		id := tx.ID()
		if seen[id] {
			t.Fatal("duplicate transaction ID generated")
		}
		seen[id] = true
	}
}

func TestGeneratorConservingOnlyEmitsConservingOps(t *testing.T) {
	conserving := map[string]bool{
		ContractGetBalance:  true,
		ContractSendPayment: true,
		ContractAmalgamate:  true,
	}
	for _, mix := range []bool{false, true} {
		// Tiny pool forces the partner-less fallback paths too.
		g := NewGenerator(Config{Accounts: 8, Shards: 4, Theta: 0.9, ReadRatio: 0.2,
			CrossPct: 0.3, Mix: mix, Conserving: true, Seed: 11})
		for _, tx := range g.Batch(2000) {
			if !conserving[tx.Contract] {
				t.Fatalf("mix=%v: conserving stream emitted %s", mix, tx.Contract)
			}
		}
	}
}
