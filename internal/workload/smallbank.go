// Package workload implements the SmallBank benchmark the paper
// evaluates with (§11.2): six transaction types over per-account
// checking and savings balances, a Zipfian account sampler with skew
// parameter θ, a read ratio Pr selecting GetBalance vs SendPayment,
// and a cross-shard mixing percentage P.
package workload

import (
	"fmt"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
)

// Contract names registered by RegisterSmallBank.
const (
	ContractGetBalance      = "smallbank.get_balance"
	ContractSendPayment     = "smallbank.send_payment"
	ContractDepositChecking = "smallbank.deposit_checking"
	ContractTransactSavings = "smallbank.transact_savings"
	ContractWriteCheck      = "smallbank.write_check"
	ContractAmalgamate      = "smallbank.amalgamate"
)

// CheckingKey returns the storage key of an account's checking balance.
func CheckingKey(account string) types.Key { return types.Key("c:" + account) }

// SavingsKey returns the storage key of an account's savings balance.
func SavingsKey(account string) types.Key { return types.Key("s:" + account) }

// AccountName formats the i-th benchmark account.
func AccountName(i int) string { return fmt.Sprintf("acct%06d", i) }

// checkingKeyB / savingsKeyB resolve the balance keys straight from a
// raw contract argument via the interning table below; the contracts
// resolve each key exactly once per use.
func checkingKeyB(acct []byte) types.Key { ck, _ := acctKeys(acct); return ck }
func savingsKeyB(acct []byte) types.Key  { _, sk := acctKeys(acct); return sk }

// acctKeys interns both balance keys per account name: contracts
// execute once per transaction per replica (preplay plus validation),
// and the two key concatenations were among the largest remaining
// per-transaction allocations. The table is bounded by the account
// pool and read-mostly after warmup.
func acctKeys(acct []byte) (types.Key, types.Key) {
	keyTabMu.RLock()
	ks, ok := keyTab[string(acct)] // compiles to a no-alloc map probe
	keyTabMu.RUnlock()
	if !ok {
		ks = [2]types.Key{types.Key("c:" + string(acct)), types.Key("s:" + string(acct))}
		keyTabMu.Lock()
		keyTab[string(acct)] = ks
		keyTabMu.Unlock()
	}
	return ks[0], ks[1]
}

var (
	keyTabMu sync.RWMutex
	keyTab   = map[string][2]types.Key{}
)

func arg(args [][]byte, i int) ([]byte, error) {
	if i >= len(args) {
		return nil, contract.Failf("smallbank: missing argument %d", i)
	}
	return args[i], nil
}

func intArg(args [][]byte, i int) (int64, error) {
	b, err := arg(args, i)
	if err != nil {
		return 0, err
	}
	v, err := contract.DecodeInt64(b)
	if err != nil {
		return 0, contract.Failf("smallbank: argument %d is not an amount: %v", i, err)
	}
	return v, nil
}

// getBalance reads both balances of one account (the read-only query).
func getBalance(st contract.State, args [][]byte) error {
	acct, err := arg(args, 0)
	if err != nil {
		return err
	}
	if _, err := contract.ReadInt64(st, checkingKeyB(acct)); err != nil {
		return err
	}
	_, err = contract.ReadInt64(st, savingsKeyB(acct))
	return err
}

// sendPayment moves amount from one checking account to another. As in
// the paper's description ("balances are updated by reading the
// current balance and then writing the new values back") the transfer
// always applies; overdrafts go negative rather than failing, keeping
// the workload write-heavy under contention.
func sendPayment(st contract.State, args [][]byte) error {
	src, err := arg(args, 0)
	if err != nil {
		return err
	}
	dst, err := arg(args, 1)
	if err != nil {
		return err
	}
	amount, err := intArg(args, 2)
	if err != nil {
		return err
	}
	srcKey, dstKey := checkingKeyB(src), checkingKeyB(dst)
	sb, err := contract.ReadInt64(st, srcKey)
	if err != nil {
		return err
	}
	if err := contract.WriteInt64(st, srcKey, sb-amount); err != nil {
		return err
	}
	db, err := contract.ReadInt64(st, dstKey)
	if err != nil {
		return err
	}
	return contract.WriteInt64(st, dstKey, db+amount)
}

// depositChecking adds amount to a checking balance.
func depositChecking(st contract.State, args [][]byte) error {
	acct, err := arg(args, 0)
	if err != nil {
		return err
	}
	amount, err := intArg(args, 1)
	if err != nil {
		return err
	}
	k := checkingKeyB(acct)
	b, err := contract.ReadInt64(st, k)
	if err != nil {
		return err
	}
	return contract.WriteInt64(st, k, b+amount)
}

// transactSavings adds amount (possibly negative) to a savings balance.
func transactSavings(st contract.State, args [][]byte) error {
	acct, err := arg(args, 0)
	if err != nil {
		return err
	}
	amount, err := intArg(args, 1)
	if err != nil {
		return err
	}
	k := savingsKeyB(acct)
	b, err := contract.ReadInt64(st, k)
	if err != nil {
		return err
	}
	return contract.WriteInt64(st, k, b+amount)
}

// writeCheck cashes a check against the combined balance: if the total
// is insufficient, an extra penalty of 1 is deducted (classic
// SmallBank semantics).
func writeCheck(st contract.State, args [][]byte) error {
	acct, err := arg(args, 0)
	if err != nil {
		return err
	}
	amount, err := intArg(args, 1)
	if err != nil {
		return err
	}
	ck := checkingKeyB(acct)
	cb, err := contract.ReadInt64(st, ck)
	if err != nil {
		return err
	}
	sv, err := contract.ReadInt64(st, savingsKeyB(acct))
	if err != nil {
		return err
	}
	if cb+sv < amount {
		return contract.WriteInt64(st, ck, cb-amount-1)
	}
	return contract.WriteInt64(st, ck, cb-amount)
}

// amalgamate moves the full balance (savings + checking) of one
// account into another's checking, zeroing the source.
func amalgamate(st contract.State, args [][]byte) error {
	src, err := arg(args, 0)
	if err != nil {
		return err
	}
	dst, err := arg(args, 1)
	if err != nil {
		return err
	}
	srcSav, srcChk, dstChk := savingsKeyB(src), checkingKeyB(src), checkingKeyB(dst)
	sv, err := contract.ReadInt64(st, srcSav)
	if err != nil {
		return err
	}
	ck, err := contract.ReadInt64(st, srcChk)
	if err != nil {
		return err
	}
	if err := contract.WriteInt64(st, srcSav, 0); err != nil {
		return err
	}
	if err := contract.WriteInt64(st, srcChk, 0); err != nil {
		return err
	}
	db, err := contract.ReadInt64(st, dstChk)
	if err != nil {
		return err
	}
	return contract.WriteInt64(st, dstChk, db+sv+ck)
}

// RegisterSmallBank installs the six SmallBank contracts into reg.
func RegisterSmallBank(reg *contract.Registry) {
	reg.MustRegister(contract.Func{ContractName: ContractGetBalance, Fn: getBalance})
	reg.MustRegister(contract.Func{ContractName: ContractSendPayment, Fn: sendPayment})
	reg.MustRegister(contract.Func{ContractName: ContractDepositChecking, Fn: depositChecking})
	reg.MustRegister(contract.Func{ContractName: ContractTransactSavings, Fn: transactSavings})
	reg.MustRegister(contract.Func{ContractName: ContractWriteCheck, Fn: writeCheck})
	reg.MustRegister(contract.Func{ContractName: ContractAmalgamate, Fn: amalgamate})
}

// InitAccounts seeds n accounts with the given starting balances in
// both checking and savings.
func InitAccounts(store storage.Backend, n int, checking, savings int64) {
	recs := make([]types.RWRecord, 0, 2*n)
	for i := 0; i < n; i++ {
		name := AccountName(i)
		recs = append(recs,
			types.RWRecord{Key: CheckingKey(name), Value: contract.EncodeInt64(checking)},
			types.RWRecord{Key: SavingsKey(name), Value: contract.EncodeInt64(savings)},
		)
	}
	store.Apply(recs)
}

// TotalBalance sums every checking and savings balance in the store —
// the conservation invariant tests assert after running transfers.
func TotalBalance(store storage.Backend, n int) (int64, error) {
	var total int64
	for i := 0; i < n; i++ {
		name := AccountName(i)
		for _, k := range []types.Key{CheckingKey(name), SavingsKey(name)} {
			v, _ := store.Get(k)
			x, err := contract.DecodeInt64(v)
			if err != nil {
				return 0, err
			}
			total += x
		}
	}
	return total, nil
}
