package workload

import (
	"math/rand"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// Config parameterizes the SmallBank transaction generator with the
// knobs the paper's evaluation sweeps.
type Config struct {
	// Accounts is the account pool size (10,000 for the CE evaluation,
	// 1,000 for the system evaluation).
	Accounts int
	// Shards is the number of shards; accounts are assigned to shards
	// by the protocol's hash partitioner.
	Shards int
	// Theta is the Zipfian skew θ; 0.85 is the paper's default
	// high-contention setting.
	Theta float64
	// ReadRatio is Pr, the probability of a read-only GetBalance; the
	// remainder are SendPayment transfers.
	ReadRatio float64
	// CrossPct is P, the fraction of transactions spanning two shards.
	CrossPct float64
	// Mix selects the full six-type SmallBank mix instead of the
	// focal GetBalance/SendPayment pair.
	Mix bool
	// Conserving restricts the stream to transactions that preserve
	// the total balance across all accounts (GetBalance, SendPayment,
	// and — under Mix — Amalgamate), so invariant checkers can assert
	// conservation against the genesis total. DepositChecking
	// fallbacks are replaced by reads.
	Conserving bool
	// Seed makes the stream reproducible.
	Seed int64
	// Client is stamped on generated transactions.
	Client uint64
}

func (c Config) withDefaults() Config {
	if c.Accounts <= 0 {
		c.Accounts = 1000
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// Generator produces SmallBank transactions. Not safe for concurrent
// use; each client goroutine should own one (see Split).
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *Zipf
	smap  types.ShardMap
	nonce uint64

	// shardOf maps account index to its shard; byShard buckets
	// account indices per shard; shardZipf samples within one shard's
	// bucket with the same skew.
	shardOf   []types.ShardID
	byShard   [][]int
	shardZipf []*Zipf

	// names holds every account name pre-encoded: transaction args are
	// read-only downstream, so generated transactions share these
	// slices instead of re-formatting acct%06d per draw.
	names [][]byte
}

// NewGenerator builds a generator; the account→shard assignment is
// derived from the protocol's hash partitioner so clients and replicas
// agree on routing.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:     cfg,
		rng:     rng,
		zipf:    NewZipf(rng, cfg.Accounts, cfg.Theta),
		smap:    types.NewShardMap(cfg.Shards),
		shardOf: make([]types.ShardID, cfg.Accounts),
		byShard: make([][]int, cfg.Shards),
		names:   accountNames(cfg.Accounts),
	}
	for i := 0; i < cfg.Accounts; i++ {
		s := g.smap.ShardOf(types.Key(g.names[i]))
		g.shardOf[i] = s
		g.byShard[s] = append(g.byShard[s], i)
	}
	g.shardZipf = make([]*Zipf, cfg.Shards)
	for s := range g.shardZipf {
		if len(g.byShard[s]) > 0 {
			g.shardZipf[s] = NewZipf(rng, len(g.byShard[s]), cfg.Theta)
		}
	}
	return g
}

// Split derives an independent generator with the same configuration
// but a decorrelated stream, for concurrent clients.
func (g *Generator) Split(client uint64) *Generator {
	cfg := g.cfg
	cfg.Seed = g.cfg.Seed*1_000_003 + int64(client) + 1
	cfg.Client = client
	return NewGenerator(cfg)
}

// ShardOfAccount returns the shard owning account index i.
func (g *Generator) ShardOfAccount(i int) types.ShardID { return g.shardOf[i] }

// AccountsInShard returns how many accounts shard s owns.
func (g *Generator) AccountsInShard(s types.ShardID) int { return len(g.byShard[s]) }

// pickGlobal draws an account index with Zipfian skew over the whole
// pool.
func (g *Generator) pickGlobal() int { return int(g.zipf.Next()) }

// pickInShard draws an account index within shard s with Zipfian skew.
func (g *Generator) pickInShard(s types.ShardID) (int, bool) {
	bucket := g.byShard[s]
	if len(bucket) == 0 {
		return 0, false
	}
	return bucket[g.shardZipf[s].Next()], true
}

// pickOtherShard returns a uniformly random shard different from s
// that owns at least one account.
func (g *Generator) pickOtherShard(s types.ShardID) (types.ShardID, bool) {
	if g.cfg.Shards < 2 {
		return 0, false
	}
	for tries := 0; tries < 4*g.cfg.Shards; tries++ {
		o := types.ShardID(g.rng.Intn(g.cfg.Shards))
		if o != s && len(g.byShard[o]) > 0 {
			return o, true
		}
	}
	return 0, false
}

func (g *Generator) amount() int64 { return int64(1 + g.rng.Intn(100)) }

// amountArg draws an amount (same distribution and rng consumption as
// amount) and returns its shared pre-encoded form: args are read-only
// downstream, and a fresh 8-byte buffer per generated transaction was
// a visible slice of the client-side allocation budget.
func (g *Generator) amountArg() []byte { return amountEnc[g.rng.Intn(100)] }

var amountEnc = func() [100][]byte {
	var t [100][]byte
	for i := range t {
		t[i] = contract.EncodeInt64(int64(i + 1))
	}
	return t
}()

func (g *Generator) newTx(kind types.TxKind, shards []types.ShardID, name string, args ...[]byte) *types.Transaction {
	g.nonce++
	return &types.Transaction{
		Client:   g.cfg.Client,
		Nonce:    g.nonce,
		Kind:     kind,
		Shards:   shards,
		Contract: name,
		Args:     args,
	}
}

// Next produces the next transaction of the configured mix. With
// probability CrossPct it spans two shards (kind CrossShard);
// otherwise it is confined to a single shard.
func (g *Generator) Next() *types.Transaction {
	a := g.pickGlobal()
	s := g.shardOf[a]
	if g.cfg.CrossPct > 0 && g.rng.Float64() < g.cfg.CrossPct {
		if tx := g.crossTx(a, s); tx != nil {
			return tx
		}
	}
	return g.singleTx(a, s)
}

// NextForShard produces a single-shard transaction confined to shard
// s, as submitted by clients that route to s's proposer.
func (g *Generator) NextForShard(s types.ShardID) *types.Transaction {
	a, ok := g.pickInShard(s)
	if !ok {
		// Shard owns no accounts (tiny pools); fall back to any.
		a = g.pickGlobal()
		s = g.shardOf[a]
	}
	return g.singleTx(a, s)
}

func (g *Generator) singleTx(a int, s types.ShardID) *types.Transaction {
	name := g.names[a]
	if g.cfg.Mix {
		return g.mixedSingleTx(a, s)
	}
	if g.rng.Float64() < g.cfg.ReadRatio {
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
	}
	// Same-shard transfer partner.
	b, ok := g.pickInShard(s)
	if !ok || b == a {
		if g.cfg.Conserving {
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
		}
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractDepositChecking,
			name, g.amountArg())
	}
	return g.newTx(types.SingleShard, []types.ShardID{s}, ContractSendPayment,
		name, g.names[b], g.amountArg())
}

func (g *Generator) mixedSingleTx(a int, s types.ShardID) *types.Transaction {
	name := g.names[a]
	if g.cfg.Conserving {
		// Conserving subset of the mix: reads, transfers, and
		// amalgamation all preserve the total balance.
		switch g.rng.Intn(3) {
		case 0:
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
		case 1:
			if b, ok := g.pickInShard(s); ok && b != a {
				return g.newTx(types.SingleShard, []types.ShardID{s}, ContractAmalgamate,
					name, g.names[b])
			}
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
		default:
			if b, ok := g.pickInShard(s); ok && b != a {
				return g.newTx(types.SingleShard, []types.ShardID{s}, ContractSendPayment,
					name, g.names[b], g.amountArg())
			}
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractGetBalance, name)
	case 1:
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractDepositChecking,
			name, g.amountArg())
	case 2:
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractTransactSavings,
			name, g.amountArg())
	case 3:
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractWriteCheck,
			name, g.amountArg())
	case 4:
		if b, ok := g.pickInShard(s); ok && b != a {
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractAmalgamate,
				name, g.names[b])
		}
		fallthrough
	default:
		if b, ok := g.pickInShard(s); ok && b != a {
			return g.newTx(types.SingleShard, []types.ShardID{s}, ContractSendPayment,
				name, g.names[b], g.amountArg())
		}
		return g.newTx(types.SingleShard, []types.ShardID{s}, ContractDepositChecking,
			name, g.amountArg())
	}
}

// crossTx builds a two-shard SendPayment from account a (shard s) to
// an account in another shard. Returns nil if no second shard exists.
func (g *Generator) crossTx(a int, s types.ShardID) *types.Transaction {
	o, ok := g.pickOtherShard(s)
	if !ok {
		return nil
	}
	b, ok := g.pickInShard(o)
	if !ok {
		return nil
	}
	shards := []types.ShardID{s, o}
	if o < s {
		shards = []types.ShardID{o, s}
	}
	return g.newTx(types.CrossShard, shards, ContractSendPayment,
		g.names[a], g.names[b], g.amountArg())
}

// Batch produces n transactions via Next.
func (g *Generator) Batch(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BatchForShard produces n single-shard transactions for shard s.
func (g *Generator) BatchForShard(s types.ShardID, n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.NextForShard(s)
	}
	return out
}

// accountNames returns the pre-encoded name table for n accounts,
// shared across generators: every load driver spins up one generator
// per client over the same account set, and the table is read-only.
func accountNames(n int) [][]byte {
	namesMu.Lock()
	defer namesMu.Unlock()
	if len(namesTable) < n {
		start := len(namesTable)
		namesTable = append(namesTable, make([][]byte, n-start)...)
		for i := start; i < n; i++ {
			namesTable[i] = []byte(AccountName(i))
		}
	}
	return namesTable[:n]
}

var (
	namesMu    sync.Mutex
	namesTable [][]byte
)
