package workload

import (
	"math"
	"math/rand"
)

// Zipf samples integers in [0, n) with the YCSB Zipfian distribution:
// item rank r is drawn with probability proportional to 1/r^theta.
// Unlike math/rand's Zipf it supports theta < 1, the range the paper
// sweeps (0.75 ≤ θ ≤ 0.9). theta = 0 degenerates to uniform.
//
// Zipf is not safe for concurrent use; give each client goroutine its
// own instance.
type Zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64
}

// NewZipf builds a sampler over [0, n) with skew theta in [0, 1).
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: zipf needs n > 0")
	}
	if theta < 0 || theta >= 1 {
		panic("workload: zipf skew must be in [0,1)")
	}
	z := &Zipf{rng: rng, n: uint64(n), theta: theta}
	z.zetan = zeta(uint64(n), theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next sample.
func (z *Zipf) Next() uint64 {
	if z.n == 1 {
		return 0
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
