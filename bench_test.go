package thunderbolt

// One testing.B benchmark per evaluation figure (paper §11–§12). Each
// benchmark reports the figure's headline metrics via b.ReportMetric:
// tps, latency_ms, and (for the executor-level figures) reexec/tx.
// cmd/bench runs the full parameter sweeps; these benches pin the
// representative points so `go test -bench=.` regenerates every
// figure's core comparison.

import (
	"fmt"
	"testing"
	"time"

	"thunderbolt/internal/bench"
)

func reportRows(b *testing.B, rows []bench.Row) {
	b.Helper()
	if len(rows) == 0 {
		b.Skip("no rows produced")
	}
	var tps, lat, re float64
	for _, r := range rows {
		tps += r.TPS
		lat += r.LatencyMS
		re += r.Reexec
	}
	n := float64(len(rows))
	b.ReportMetric(tps/n, "tps")
	b.ReportMetric(lat/n, "latency_ms")
	b.ReportMetric(re/n, "reexec/tx")
}

// benchOnce runs fn once regardless of b.N (cluster experiments are
// duration-based); the figure metrics go through ReportMetric.
func benchOnce(b *testing.B, fn func(bench.Options) []bench.Row) {
	b.Helper()
	opt := bench.Options{Quick: true, Seed: 42}
	var rows []bench.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = fn(opt)
	}
	b.StopTimer()
	reportRows(b, rows)
	for _, r := range rows {
		b.Logf("fig %s %s x=%s tps=%.0f latency=%.2fms reexec=%.3f",
			r.Figure, r.Series, r.X, r.TPS, r.LatencyMS, r.Reexec)
	}
}

// BenchmarkFig11_ReadWriteBalanced regenerates Figure 11a: CE vs OCC
// vs 2PL-NoWait across executor counts at Pr=0.5, θ=0.85.
func BenchmarkFig11_ReadWriteBalanced(b *testing.B) { benchOnce(b, bench.Fig11a) }

// BenchmarkFig11_UpdateOnly regenerates Figure 11b (Pr=0).
func BenchmarkFig11_UpdateOnly(b *testing.B) { benchOnce(b, bench.Fig11b) }

// BenchmarkFig12_ThetaAndPr regenerates Figure 12: θ sweep at Pr=0.5
// and Pr sweep at θ=0.85.
func BenchmarkFig12_ThetaAndPr(b *testing.B) { benchOnce(b, bench.Fig12) }

// BenchmarkFig13_Scale regenerates Figure 13: Thunderbolt vs
// Thunderbolt-OCC vs Tusk over committee sizes.
func BenchmarkFig13_Scale(b *testing.B) { benchOnce(b, bench.Fig13) }

// BenchmarkFig14_CrossShard regenerates Figure 14: the cross-shard
// percentage sweep.
func BenchmarkFig14_CrossShard(b *testing.B) { benchOnce(b, bench.Fig14) }

// BenchmarkFig15_Reconfig regenerates Figure 15: the reconfiguration
// period (K') sweep.
func BenchmarkFig15_Reconfig(b *testing.B) { benchOnce(b, bench.Fig15) }

// BenchmarkFig16_RoundRuntime regenerates Figure 16: per-wave commit
// runtime across periodic reconfigurations.
func BenchmarkFig16_RoundRuntime(b *testing.B) { benchOnce(b, bench.Fig16) }

// BenchmarkFig17_Failures regenerates Figure 17: the cross-shard
// sweep under f crashed replicas.
func BenchmarkFig17_Failures(b *testing.B) { benchOnce(b, bench.Fig17) }

// BenchmarkAblation_ParallelValidation quantifies §4's design choice:
// validating a preplayed batch with a dependency-structured parallel
// pass versus a single worker. The paper credits parallel validation
// for keeping replicas off the critical path; this ablation measures
// the per-batch validation cost at 1, 4, and 16 workers.
func BenchmarkAblation_ParallelValidation(b *testing.B) {
	store := NewStore()
	registry := NewRegistry()
	RegisterSmallBank(registry)
	InitAccounts(store, 10_000, 10_000, 10_000)
	gen := NewGenerator(WorkloadConfig{Accounts: 10_000, Theta: 0.85, ReadRatio: 0.5, Seed: 1})
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("validators=%d", workers), func(b *testing.B) {
			exec := NewExecutor(ExecutorConfig{
				Executors: 8, Validators: workers, Registry: registry, Store: store,
			})
			start := time.Now()
			committed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.ExecuteBatch(gen.Batch(500))
				if err != nil {
					b.Fatal(err)
				}
				committed += len(res.Schedule)
			}
			b.StopTimer()
			if el := time.Since(start).Seconds(); el > 0 {
				b.ReportMetric(float64(committed)/el, "tps")
			}
		})
	}
}

// BenchmarkAblation_BatchSize sweeps the proposer batch size (the
// paper fixes 300/500); larger batches amortize scheduling but raise
// intra-batch conflict pressure.
func BenchmarkAblation_BatchSize(b *testing.B) {
	for _, size := range []int{100, 300, 500, 1000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			store := NewStore()
			registry := NewRegistry()
			RegisterSmallBank(registry)
			InitAccounts(store, 10_000, 10_000, 10_000)
			gen := NewGenerator(WorkloadConfig{Accounts: 10_000, Theta: 0.85, ReadRatio: 0.5, Seed: 2})
			exec := NewExecutor(ExecutorConfig{Executors: 8, Registry: registry, Store: store})
			start := time.Now()
			committed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.ExecuteBatch(gen.Batch(size))
				if err != nil {
					b.Fatal(err)
				}
				committed += len(res.Schedule)
			}
			b.StopTimer()
			if el := time.Since(start).Seconds(); el > 0 {
				b.ReportMetric(float64(committed)/el, "tps")
			}
		})
	}
}

// BenchmarkExecutorBatch measures the standalone public-API executor
// on one 500-transaction SmallBank batch per iteration (the embedding
// use case, not a paper figure).
func BenchmarkExecutorBatch(b *testing.B) {
	store := NewStore()
	registry := NewRegistry()
	RegisterSmallBank(registry)
	InitAccounts(store, 10_000, 10_000, 10_000)
	exec := NewExecutor(ExecutorConfig{Executors: 8, Registry: registry, Store: store})
	gen := NewGenerator(WorkloadConfig{Accounts: 10_000, Theta: 0.85, ReadRatio: 0.5, Seed: 1})

	b.ResetTimer()
	start := time.Now()
	committed := 0
	for i := 0; i < b.N; i++ {
		res, err := exec.ExecuteBatch(gen.Batch(500))
		if err != nil {
			b.Fatal(err)
		}
		committed += len(res.Schedule)
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(committed)/el, "tps")
	}
	b.ReportMetric(float64(committed)/float64(b.N), "tx/batch")
}
