package thunderbolt

import (
	"fmt"
	"testing"
	"time"
)

func TestExecutorFacade(t *testing.T) {
	store := NewStore()
	registry := NewRegistry()
	RegisterSmallBank(registry)
	InitAccounts(store, 10, 100, 100)
	before, err := TotalBalance(store, 10)
	if err != nil {
		t.Fatal(err)
	}

	exec := NewExecutor(ExecutorConfig{Executors: 4, Registry: registry, Store: store})
	var txs []*Transaction
	for i := 0; i < 40; i++ {
		txs = append(txs, &Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: "smallbank.send_payment",
			Args: [][]byte{
				[]byte(fmt.Sprintf("acct%06d", i%10)),
				[]byte(fmt.Sprintf("acct%06d", (i+1)%10)),
				EncodeInt64(3),
			},
		})
	}
	res, err := exec.ExecuteBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) != 40 || len(res.Results) != 40 {
		t.Fatalf("scheduled %d", len(res.Schedule))
	}
	after, err := TotalBalance(store, 10)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("conservation broken: %d -> %d", before, after)
	}
}

func TestExecutorCustomContract(t *testing.T) {
	store := NewStore()
	registry := NewRegistry()
	registry.MustRegister(ContractFunc{
		ContractName: "counter.add",
		Fn: func(st State, args [][]byte) error {
			v, err := st.Read("counter")
			if err != nil {
				return err
			}
			cur, err := DecodeInt64(v)
			if err != nil {
				return err
			}
			delta, err := DecodeInt64(args[0])
			if err != nil {
				return err
			}
			return st.Write("counter", EncodeInt64(cur+delta))
		},
	})
	exec := NewExecutor(ExecutorConfig{Executors: 4, Registry: registry, Store: store})
	var txs []*Transaction
	for i := 0; i < 25; i++ {
		txs = append(txs, &Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: "counter.add",
			Args: [][]byte{EncodeInt64(2)},
		})
	}
	if _, err := exec.ExecuteBatch(txs); err != nil {
		t.Fatal(err)
	}
	v, _ := store.Get("counter")
	got, _ := DecodeInt64(v)
	if got != 50 {
		t.Fatalf("counter=%d want 50 (lost updates under concurrency)", got)
	}
}

func TestClusterFacadeSmoke(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 4, Accounts: 32, BatchSize: 32, Executors: 2, Validators: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	gen := NewGenerator(WorkloadConfig{Accounts: 32, Shards: 4, Theta: 0.5, ReadRatio: 0.5, Seed: 1, Client: 1})
	for _, tx := range gen.Batch(20) {
		if err := c.SubmitWait(tx, 2*time.Second, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
