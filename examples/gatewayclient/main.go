// Gateway client: a remote client surviving a proposer crash.
//
// Four Thunderbolt replicas run over real TCP sockets (one process
// here, but nothing in-process crosses the wire protocol: every
// message is a framed socket write). A gateway client connects with
// its own TCP endpoint and a non-committee wire ID, opens a session,
// and streams sessioned transactions at the shard proposers —
// submit, ack, commit-push, all over sockets.
//
// Mid-stream the proposer serving the client's hottest shard is
// killed (node stopped, sockets torn down). The client's submissions
// to that shard stop being acknowledged; it fails over across
// replicas while the committee's K-rule reconfiguration rotates the
// dead proposer's shard to a live one, a wire nack teaches the client
// the new route, and the stream resumes. A duplicate resubmission of
// an already-committed transaction is answered with an ack
// referencing the original commit — the dedup window at work.
//
// CI runs this under -race as the gateway smoke test; it exits
// non-zero if the client ever stalls.
package main

import (
	"fmt"
	"log"
	"time"

	"thunderbolt"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

const (
	n        = 4
	accounts = 16
	seed     = 2026
)

func main() {
	// --- Committee: four replicas over loopback TCP ---
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	peers := make(map[types.ReplicaID]string, n)
	trs := make([]*transport.TCPTransport, n)
	for i := 0; i < n; i++ {
		tr, err := thunderbolt.NewTCPTransport(thunderbolt.TCPConfig{
			Self: types.ReplicaID(i), Listen: "127.0.0.1:0",
			DialTimeout: 250 * time.Millisecond, RetryInterval: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		trs[i] = tr
		peers[types.ReplicaID(i)] = tr.Addr()
	}
	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		trs[i].SetPeers(peers)
		reg := contract.NewRegistry()
		workload.RegisterSmallBank(reg)
		st := storage.New()
		workload.InitAccounts(st, accounts, 1000, 1000)
		nd, err := node.New(node.Config{
			ID: types.ReplicaID(i), N: n, Transport: trs[i],
			Signer: signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			Executors: 2, Validators: 2, BatchSize: 16,
			K:            8, // silent-proposer reconfiguration: the crash recovery path
			TickInterval: 5 * time.Millisecond, MinRoundInterval: 5 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	defer func() {
		for i := 0; i < n; i++ {
			if nodes[i] != nil {
				nodes[i].Stop()
			}
			if trs[i] != nil {
				_ = trs[i].Close()
			}
		}
	}()

	// --- Remote gateway client: its own socket endpoint, wire ID
	// outside the committee range, one dedup session ---
	ctr, err := thunderbolt.NewTCPTransport(thunderbolt.TCPConfig{
		Self: thunderbolt.GatewayClientIDBase + 1, Listen: "127.0.0.1:0",
		Peers:       peers,
		DialTimeout: 250 * time.Millisecond, RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctr.Close()
	gw, err := thunderbolt.NewGatewayClient(thunderbolt.GatewayClientConfig{
		Transport: ctr, N: n, Session: 1,
		AckTimeout: 300 * time.Millisecond, RetryEvery: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	gen := thunderbolt.NewGenerator(thunderbolt.WorkloadConfig{
		Accounts: accounts, Shards: n, Seed: seed, Client: 1,
	})

	// Phase 1: healthy stream to shard 2's proposer.
	const victimShard = types.ShardID(2)
	var first *types.Transaction
	for i := 0; i < 5; i++ {
		tx := gen.NextForShard(victimShard)
		if first == nil {
			first = tx.Clone()
		}
		if _, err := gw.SubmitWait(tx, 30*time.Second); err != nil {
			log.Fatalf("healthy-phase submission failed: %v", err)
		}
	}
	fmt.Println("phase 1: 5 transactions committed over TCP")

	// Phase 2: duplicate resubmission — answered from the dedup
	// window with an ack referencing the original commit.
	res, err := gw.SubmitWait(first, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Duplicate {
		log.Fatal("duplicate resubmission was not recognized")
	}
	fmt.Println("phase 2: duplicate resubmit acked against the original commit")

	// Phase 3: kill the proposer serving the victim shard, keep
	// streaming at it. The client must survive: failover past the dead
	// socket, reconfiguration, wire-nack re-route, commit.
	victim := node.ProposerOfShard(victimShard, 0, n)
	nodes[victim].Stop()
	_ = trs[victim].Close()
	nodes[victim], trs[victim] = nil, nil
	fmt.Printf("phase 3: killed replica %d (shard %d's proposer)\n", victim, victimShard)

	reroutes, failovers := 0, 0
	for i := 0; i < 5; i++ {
		tx := gen.NextForShard(victimShard)
		res, err := gw.SubmitWait(tx, 60*time.Second)
		if err != nil {
			log.Fatalf("submission did not survive the crash: %v", err)
		}
		reroutes += res.Reroutes
		failovers += res.Failovers
	}
	if reroutes+failovers == 0 {
		log.Fatal("crash survived without any failover or re-route — scenario exercised nothing")
	}
	fmt.Printf("phase 3: 5 post-crash transactions committed (%d failovers, %d wire re-routes)\n",
		failovers, reroutes)
	fmt.Println("remote client survived the proposer crash")
}
