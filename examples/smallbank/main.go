// SmallBank cluster demo: the workload the paper's system evaluation
// uses (§12). A local committee of replicas runs the full Thunderbolt
// protocol — DAG dissemination, Tusk commitment, CE preplay, parallel
// validation — under a closed-loop SmallBank load, then prints the
// throughput/latency report and per-replica protocol counters.
//
// Flags:
//
//	-n 4          committee size
//	-mode ce      ce | occ | tusk
//	-duration 5s  measurement window
//	-clients 16   closed-loop clients
//	-theta 0.85   Zipfian skew
//	-pr 0.5       read (GetBalance) ratio
//	-wan          use the WAN latency model instead of LAN
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"thunderbolt"
)

func main() {
	var (
		n        = flag.Int("n", 4, "committee size")
		mode     = flag.String("mode", "ce", "execution mode: ce | occ | tusk")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		clients  = flag.Int("clients", 16, "closed-loop clients")
		theta    = flag.Float64("theta", 0.85, "Zipfian skew")
		pr       = flag.Float64("pr", 0.5, "read ratio Pr")
		wan      = flag.Bool("wan", false, "WAN latency model")
	)
	flag.Parse()

	var m thunderbolt.Mode
	switch *mode {
	case "ce":
		m = thunderbolt.ModeThunderbolt
	case "occ":
		m = thunderbolt.ModeThunderboltOCC
	case "tusk":
		m = thunderbolt.ModeTusk
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	latency := thunderbolt.LANModel()
	if *wan {
		latency = thunderbolt.WANModel()
	}

	c, err := thunderbolt.NewCluster(thunderbolt.ClusterConfig{
		N: *n, Mode: m, Latency: latency,
		Accounts: 1000, BatchSize: 500, Executors: 16, Validators: 16,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	fmt.Printf("running %s on %d replicas for %v (theta=%.2f, Pr=%.2f)...\n",
		m, *n, *duration, *theta, *pr)
	rep := c.RunLoad(thunderbolt.LoadConfig{
		Duration: *duration,
		Clients:  *clients,
		Workload: thunderbolt.WorkloadConfig{Theta: *theta, ReadRatio: *pr},
	})
	fmt.Printf("\n%s\n\n", rep)
	fmt.Println("per-replica protocol counters:")
	for i, s := range rep.NodeStats {
		fmt.Printf("  r%-2d epoch=%d rounds=%d committed=%d single=%d cross=%d reexec=%d skip=%d\n",
			i, s.Epoch, s.RoundsProposed, s.CommittedTxs, s.CommittedSingle,
			s.CommittedCross, s.Reexecutions, s.SkipBlocks)
	}
}
