// Cross-shard demo: transactions spanning two shards execute under
// the OE model with no 2PC coordinator (paper §5). The demo submits a
// mix of single-shard and cross-shard SmallBank transfers, proves
// atomicity by checking balance conservation on every replica, and
// shows the proposal rules at work (conversions, skip blocks).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"thunderbolt"
)

func main() {
	const (
		nReplicas = 4
		accounts  = 100
		transfers = 200
	)
	c, err := thunderbolt.NewCluster(thunderbolt.ClusterConfig{
		N: nReplicas, Accounts: accounts, BatchSize: 100,
		Executors: 8, Validators: 8, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	before, err := thunderbolt.TotalBalance(c.Node(0).Store(), accounts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total balance before: %d\n", before)

	// 60%% cross-shard SendPayments, the rest single-shard.
	gen := thunderbolt.NewGenerator(thunderbolt.WorkloadConfig{
		Accounts: accounts, Shards: nReplicas,
		Theta: 0.6, ReadRatio: 0, CrossPct: 0.6, Seed: 7, Client: 1,
	})
	var txs []*thunderbolt.Transaction
	for len(txs) < transfers {
		tx := gen.Next()
		if tx.Contract == "smallbank.send_payment" {
			txs = append(txs, tx)
		}
	}
	cross := 0
	for _, tx := range txs {
		if tx.Kind == thunderbolt.CrossShard {
			cross++
		}
	}
	fmt.Printf("submitting %d transfers (%d cross-shard, %d single-shard)\n",
		len(txs), cross, len(txs)-cross)

	start := time.Now()
	var wg sync.WaitGroup
	for _, tx := range txs {
		wg.Add(1)
		go func(tx *thunderbolt.Transaction) {
			defer wg.Done()
			if err := c.SubmitWait(tx, 2*time.Second, 30*time.Second); err != nil {
				log.Printf("transfer lost: %v", err)
			}
		}(tx)
	}
	wg.Wait()
	fmt.Printf("all transfers committed in %v\n", time.Since(start).Round(time.Millisecond))

	if err := c.WaitConverged(10 * time.Second); err != nil {
		log.Fatalf("replicas diverged: %v", err)
	}
	for i := 0; i < nReplicas; i++ {
		after, err := thunderbolt.TotalBalance(c.Node(i).Store(), accounts)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if after != before {
			status = "VIOLATED"
		}
		fmt.Printf("replica %d: total balance %d — conservation %s\n", i, after, status)
	}

	fmt.Println("\nproposal-rule activity:")
	for i := 0; i < nReplicas; i++ {
		s := c.Node(i).Stats()
		fmt.Printf("  r%d: cross committed=%d, singles converted to cross=%d, skip blocks=%d\n",
			i, s.CommittedCross, s.ConvertedToCross, s.SkipBlocks)
	}
}
