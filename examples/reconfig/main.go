// Reconfiguration demo: a censorship attack and its mitigation
// (paper §6). One replica is crashed mid-run, silencing the shard it
// proposes for. After K silent rounds the honest replicas emit Shift
// blocks; once 2f+1 Shift blocks commit, every replica transitions to
// a new DAG at the same ending round — without pausing dissemination
// or consensus — and shard ownership rotates, so the censored shard's
// clients find a live proposer again.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"thunderbolt"
)

func main() {
	const nReplicas = 4
	c, err := thunderbolt.NewCluster(thunderbolt.ClusterConfig{
		N: nReplicas, Accounts: 100, BatchSize: 100,
		Executors: 8, Validators: 8,
		K:    6, // rotate after 6 silent rounds
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	gen := thunderbolt.NewGenerator(thunderbolt.WorkloadConfig{
		Accounts: 100, Shards: nReplicas, Theta: 0.6, ReadRatio: 0.3, Seed: 11, Client: 1,
	})

	submit := func(count int, label string) {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < count; i++ {
			tx := gen.Next()
			wg.Add(1)
			go func(tx *thunderbolt.Transaction) {
				defer wg.Done()
				// Clients retransmit on a short timer: transactions for
				// the censored shard are re-routed to the rotated
				// proposer after the reconfiguration.
				if err := c.SubmitWait(tx, 500*time.Millisecond, 60*time.Second); err != nil {
					log.Printf("lost: %v", err)
				}
			}(tx)
		}
		wg.Wait()
		fmt.Printf("%-28s %3d transactions committed in %v (epoch now %d, reconfigs %d)\n",
			label, count, time.Since(start).Round(time.Millisecond),
			c.Node(0).Stats().Epoch, c.Reconfigurations())
	}

	submit(50, "healthy committee:")

	victim := thunderbolt.ReplicaID(2)
	fmt.Printf("\n>>> crashing replica %d (censoring its shard) <<<\n\n", victim)
	c.Network().Crash(victim)

	submit(50, "under censorship attack:")

	if c.Reconfigurations() == 0 {
		log.Fatal("expected a shard reconfiguration")
	}
	fmt.Println("\nShift-block activity:")
	for i := 0; i < nReplicas; i++ {
		if thunderbolt.ReplicaID(i) == victim {
			fmt.Printf("  r%d: CRASHED\n", i)
			continue
		}
		s := c.Node(i).Stats()
		fmt.Printf("  r%d: shift blocks sent=%d, reconfigurations=%d, epoch=%d\n",
			i, s.ShiftBlocks, s.Reconfigurations, s.Epoch)
	}
	fmt.Println("\nliveness restored: the censored shard's transactions now commit via the rotated proposer.")
}
