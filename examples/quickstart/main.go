// Quickstart: embed Thunderbolt's Concurrent Executor in a single
// process. A batch of conflicting SmallBank transfers is preplayed
// concurrently with no prior knowledge of read/write sets; the
// executor emits a serializable schedule with the discovered sets,
// validates it in parallel (exactly what remote replicas do), and
// applies it.
package main

import (
	"fmt"
	"log"

	"thunderbolt"
)

func main() {
	// 1. State + contracts.
	store := thunderbolt.NewStore()
	registry := thunderbolt.NewRegistry()
	thunderbolt.RegisterSmallBank(registry)
	thunderbolt.InitAccounts(store, 4, 1000, 500) // 4 accounts, $1000/$500

	// 2. A custom contract: reads and writes flow through State, so
	// the concurrency controller observes every access at runtime.
	registry.MustRegister(thunderbolt.ContractFunc{
		ContractName: "demo.pay_interest",
		Fn: func(st thunderbolt.State, args [][]byte) error {
			key := thunderbolt.Key("s:" + string(args[0]))
			v, err := st.Read(key)
			if err != nil {
				return err
			}
			balance, err := thunderbolt.DecodeInt64(v)
			if err != nil {
				return err
			}
			return st.Write(key, thunderbolt.EncodeInt64(balance+balance/100))
		},
	})

	// 3. Build a highly conflicting batch: everyone touches account 0.
	var txs []*thunderbolt.Transaction
	for i := 0; i < 8; i++ {
		txs = append(txs, &thunderbolt.Transaction{
			Client: 1, Nonce: uint64(i + 1),
			Contract: "smallbank.send_payment",
			Args: [][]byte{
				[]byte(fmt.Sprintf("acct%06d", i%4)),
				[]byte("acct000000"),
				thunderbolt.EncodeInt64(int64(10 * (i + 1))),
			},
		})
	}
	txs = append(txs, &thunderbolt.Transaction{
		Client: 1, Nonce: 100, Contract: "demo.pay_interest",
		Args: [][]byte{[]byte("acct000001")},
	})

	// 4. Preplay concurrently, validate, apply.
	exec := thunderbolt.NewExecutor(thunderbolt.ExecutorConfig{
		Executors: 4, Registry: registry, Store: store,
	})
	res, err := exec.ExecuteBatch(txs)
	if err != nil {
		log.Fatalf("batch rejected: %v", err)
	}

	fmt.Printf("committed %d transactions (%d re-executions under contention)\n\n",
		len(res.Schedule), res.Reexecutions)
	fmt.Println("serialized schedule with runtime-discovered read/write sets:")
	for i, tx := range res.Schedule {
		r := res.Results[i]
		fmt.Printf("  #%d %-28s reads=%d writes=%d\n", i, tx.Contract, len(r.ReadSet), len(r.WriteSet))
	}

	total, err := thunderbolt.TotalBalance(store, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal balance after transfers: %d\n", total)
}
