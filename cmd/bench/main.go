// Command bench regenerates the paper's evaluation figures (§11–§12)
// and the repo's machine-readable performance baseline.
//
//	go run ./cmd/bench -fig 11a                    # one figure
//	go run ./cmd/bench -fig all -quick             # every figure, shrunk sweeps
//	go run ./cmd/bench -baseline BENCH_1.json -quick
//
// Figure output is one aligned table per figure with the same series
// and x-axis the paper plots; EXPERIMENTS.md records a captured run
// and the shape comparison against the paper. The -baseline mode runs
// the scenario matrix behind BENCH_<n>.json (tps, latency, reexec/tx,
// allocs/tx, heap-in-use per scenario), validates it (non-zero
// throughput everywhere — CI's bench smoke gate), and writes the JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"thunderbolt/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to run: 11a|11b|12|13|14|15|16|17|all")
		quick    = flag.Bool("quick", false, "shrunk sweeps for fast runs")
		seed     = flag.Int64("seed", 42, "experiment seed")
		out      = flag.String("out", "", "also write the tables to this file")
		baseline = flag.String("baseline", "", "run the baseline scenario matrix and write BENCH JSON to this path")
		spec     = flag.Bool("spec", true, "speculative execution of certified blocks in cluster scenarios (-spec=false is the escape hatch)")
	)
	flag.Parse()
	opt := bench.Options{Quick: *quick, Seed: *seed}
	if !*spec {
		opt.SpecExecDepth = -1
	}

	if *baseline != "" {
		rep, err := bench.RunBaseline(opt, bench.BaselineVersion(*baseline))
		if err != nil {
			log.Fatalf("baseline run failed: %v", err)
		}
		fmt.Print(bench.FormatBaseline(rep))
		if err := rep.Validate(); err != nil {
			log.Fatalf("baseline validation failed: %v", err)
		}
		js, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baseline, js, 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}

	var rows []bench.Row
	switch strings.ToLower(*fig) {
	case "11a":
		rows = bench.Fig11a(opt)
	case "11b":
		rows = bench.Fig11b(opt)
	case "12":
		rows = bench.Fig12(opt)
	case "13":
		rows = bench.Fig13(opt)
	case "14":
		rows = bench.Fig14(opt)
	case "15":
		rows = bench.Fig15(opt)
	case "16":
		rows = bench.Fig16(opt)
	case "17":
		rows = bench.Fig17(opt)
	case "all":
		rows = bench.All(opt)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
	text := bench.Format(rows)
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
