// Command thunderbolt runs Thunderbolt replicas and gateway clients.
//
// Local cluster (one process, simulated network):
//
//	thunderbolt -local 4 -duration 10s -mode ce
//
// Multi-process replica (TCP, one process per replica):
//
//	thunderbolt -id 0 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//
// Remote gateway client (sessioned submission against a running TCP
// committee — acks, nack re-routing, failover, commit pushes):
//
//	thunderbolt -client -peers 0=...,1=...,2=...,3=... -session 7 -duration 30s
//
// Every process of a committee must be given the same -peers list and
// -seed (keys are derived deterministically from the seed, replacing
// a key-distribution ceremony for local testbeds).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thunderbolt"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

func main() {
	var (
		local    = flag.Int("local", 0, "run an n-replica local cluster instead of one TCP replica")
		duration = flag.Duration("duration", 10*time.Second, "local mode: load duration")
		clients  = flag.Int("clients", 16, "local mode: closed-loop clients")
		mode     = flag.String("mode", "ce", "execution mode: ce | occ | tusk")

		id       = flag.Int("id", -1, "replica ID (TCP mode)")
		peersArg = flag.String("peers", "", "comma-separated id=host:port for every replica")
		seed     = flag.Int64("seed", 42, "committee key seed")
		accounts = flag.Int("accounts", 1000, "SmallBank accounts")
		batch    = flag.Int("batch", 500, "transactions per block")
		kFlag    = flag.Int("k", 0, "silent-proposer rounds before a Shift vote (0=off)")
		kPrime   = flag.Int("kprime", 0, "periodic reconfiguration period in rounds (0=off)")
		scheme   = flag.String("scheme", "ed25519", "signature scheme: ed25519 | insecure")
		spec     = flag.Bool("spec", true, "speculative execution of certified blocks (-spec=false is the escape hatch)")
		dataDir  = flag.String("data-dir", "", "TCP mode: durable WAL storage directory (empty = in-memory; a restart with the same directory recovers committed state from disk)")

		client  = flag.Bool("client", false, "run a remote gateway client against -peers instead of a replica")
		session = flag.Uint64("session", 1, "client mode: gateway session ID (unique per client lifetime)")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/flight and /debug/pprof on this host:port (empty = off)")
	)
	flag.Parse()

	if *client {
		runClient(*peersArg, *session, *duration, *accounts, *seed)
		return
	}
	m, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	// The -spec flag maps to node.Config.SpecExecDepth: 0 keeps the
	// node default (speculation on), negative disables it.
	specDepth := 0
	if !*spec {
		specDepth = -1
	}
	if *local > 0 {
		runLocal(*local, m, *duration, *clients, *accounts, *batch, *kFlag, *kPrime, specDepth, *seed, *debugAddr)
		return
	}
	runTCP(*id, *peersArg, m, *accounts, *batch, *kFlag, *kPrime, specDepth, *seed, *scheme, *dataDir, *debugAddr)
}

// runClient streams sessioned transactions at a running TCP committee
// through the gateway protocol and reports progress.
func runClient(peersArg string, session uint64, duration time.Duration, accounts int, seed int64) {
	if peersArg == "" {
		log.Fatal("client mode needs -peers")
	}
	peers := parsePeers(peersArg)
	tr, err := transport.NewTCPTransport(transport.TCPConfig{
		Self:   gateway.ClientIDBase + types.ReplicaID(session),
		Listen: "127.0.0.1:0", Peers: peers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	gw, err := gateway.NewClient(gateway.ClientConfig{
		Transport: tr, N: len(peers), Session: session,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	newGen := func(s uint64) *workload.Generator {
		return workload.NewGenerator(workload.Config{
			Accounts: accounts, Shards: len(peers), Theta: 0.85, ReadRatio: 0.5,
			Seed: seed*31 + int64(s), Client: s,
		})
	}
	gen := newGen(session)
	log.Printf("gateway client: session %d against %d replicas for %v", session, len(peers), duration)
	var committed, duplicates, reroutes, failovers int
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		res, err := gw.SubmitWait(gen.Next(), 30*time.Second)
		if err != nil {
			log.Printf("submission failed: %v", err)
			if errors.Is(err, gateway.ErrWindowStalled) {
				// An abandoned nonce wedged the window; open a fresh
				// session (sessions are disposable by contract).
				session += 1000
				gen = newGen(session)
				log.Printf("window stalled; rotated to session %d", session)
			}
			continue
		}
		committed++
		reroutes += res.Reroutes
		failovers += res.Failovers
		if res.Duplicate {
			duplicates++
		}
		if committed%100 == 0 {
			log.Printf("committed=%d duplicates=%d reroutes=%d failovers=%d",
				committed, duplicates, reroutes, failovers)
		}
	}
	log.Printf("done: committed=%d duplicates=%d reroutes=%d failovers=%d",
		committed, duplicates, reroutes, failovers)
}

func parsePeers(peersArg string) map[types.ReplicaID]string {
	peers := map[types.ReplicaID]string{}
	for _, part := range strings.Split(peersArg, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			log.Fatalf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil {
			log.Fatalf("bad peer id %q", kv[0])
		}
		peers[types.ReplicaID(pid)] = kv[1]
	}
	return peers
}

func parseMode(s string) (thunderbolt.Mode, error) {
	switch s {
	case "ce":
		return thunderbolt.ModeThunderbolt, nil
	case "occ":
		return thunderbolt.ModeThunderboltOCC, nil
	case "tusk":
		return thunderbolt.ModeTusk, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want ce|occ|tusk)", s)
}

func runLocal(n int, m thunderbolt.Mode, duration time.Duration, clients, accounts, batch, k, kprime, specDepth int, seed int64, debugAddr string) {
	c, err := thunderbolt.NewCluster(thunderbolt.ClusterConfig{
		N: n, Mode: m, Accounts: accounts, BatchSize: batch,
		K: k, KPrime: kprime, SpecExecDepth: specDepth, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if debugAddr != "" {
		nodes := make([]*node.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = c.Node(i)
		}
		startDebugServer(debugAddr, nodes)
	}
	fmt.Printf("local cluster: %d replicas, mode %s, %v of load...\n", n, m, duration)
	rep := c.RunLoad(thunderbolt.LoadConfig{
		Duration: duration, Clients: clients,
		Workload: thunderbolt.WorkloadConfig{Theta: 0.85, ReadRatio: 0.5},
	})
	fmt.Println(rep)
}

func runTCP(id int, peersArg string, m thunderbolt.Mode, accounts, batch, k, kprime, specDepth int, seed int64, schemeName, dataDir, debugAddr string) {
	if id < 0 || peersArg == "" {
		log.Fatal("TCP mode needs -id and -peers (or use -local N)")
	}
	peers := parsePeers(peersArg)
	n := len(peers)
	self := types.ReplicaID(id)
	listen, ok := peers[self]
	if !ok {
		log.Fatalf("replica %d not present in -peers", id)
	}

	sch, err := crypto.SchemeByName(schemeName)
	if err != nil {
		log.Fatal(err)
	}
	signers, verifier, err := sch.Committee(n, seed)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := transport.NewTCPTransport(transport.TCPConfig{
		Self: self, Listen: listen, Peers: peers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	var st storage.Backend
	if dataDir != "" {
		d, derr := storage.OpenDurable(storage.DurableOptions{Dir: dataDir})
		if derr != nil {
			log.Fatal(derr)
		}
		defer d.Close()
		st = d
		if d.Seq() > 0 {
			log.Printf("recovered %d keys at commit seq %d from %s (WAL replay)", d.Len(), d.Seq(), dataDir)
		}
	} else {
		st = storage.New()
	}
	if st.Seq() == 0 {
		workload.InitAccounts(st, accounts, 1_000_000, 1_000_000)
	}

	nd, err := node.New(node.Config{
		ID: self, N: n, Transport: tr,
		Signer: signers[id], Verifier: verifier,
		Registry: reg, Store: st,
		Mode: m, BatchSize: batch, K: k, KPrime: kprime,
		SpecExecDepth: specDepth,
	})
	if err != nil {
		log.Fatal(err)
	}
	nd.Start()
	defer nd.Stop()
	startDebugServer(debugAddr, []*node.Node{nd})
	log.Printf("replica %d/%d listening on %s (mode %s, shard rotation k=%d k'=%d)",
		id, n, listen, m, k, kprime)

	// Periodic status until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s := nd.Stats()
			log.Printf("epoch=%d round=%d committed=%d (single=%d cross=%d) reconfigs=%d",
				s.Epoch, s.Round, s.CommittedTxs, s.CommittedSingle, s.CommittedCross, s.Reconfigurations)
		case <-sig:
			log.Printf("shutting down")
			return
		}
	}
}
