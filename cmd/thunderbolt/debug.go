package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"

	"thunderbolt/internal/node"
)

// Debug listener (-debug-addr). Serves the observability surface of
// every replica hosted by this process — one node in TCP mode, all N
// in -local mode:
//
//	/metrics       registry snapshot as JSON, keyed by replica ID
//	/debug/flight  flight-recorder text dump (?node=i ?last=n)
//	/debug/pprof/  standard pprof handlers
//
// Reads are snapshot-based (Registry.Snapshot, FlightRecorder.Dump),
// so scraping never blocks the event loop beyond a bucket copy.

// startDebugServer serves the debug endpoints for nodes on addr in a
// background goroutine. A failure to bind is fatal: asking for
// -debug-addr and silently running without it would defeat the point.
func startDebugServer(addr string, nodes []*node.Node) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any, len(nodes))
		for _, n := range nodes {
			out[strconv.Itoa(int(n.ID()))] = n.Metrics().Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		last := 64
		if v := r.URL.Query().Get("last"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				last = n
			}
		}
		only := -1
		if v := r.URL.Query().Get("node"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				only = n
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range nodes {
			if only >= 0 && int(n.ID()) != only {
				continue
			}
			fmt.Fprintf(w, "=== node %d ===\n", n.ID())
			fmt.Fprint(w, n.Flight().Dump(last))
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	go func() {
		log.Printf("debug listener on http://%s (/metrics /debug/flight /debug/pprof)", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Fatalf("debug listener: %v", err)
		}
	}()
}
